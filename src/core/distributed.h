// A distributed coloring protocol — the Section-6 open problem, attempted.
//
// "The presented coloring algorithm ... is centralized. It is an open
// question whether there is a distributed coloring procedure that achieves
// the same kind of performance guarantee."
//
// This module implements the natural contender: slotted ALOHA with
// multiplicative backoff under an oblivious power assignment. Every request
// runs the same code with no global knowledge: transmit in each slot with
// the current access probability; on a failed attempt, back off; on
// sensing an idle slot, recover. A request that decodes successfully
// retires, and the slot index becomes its color.
//
// The produced coloring is always valid: the pairs that succeeded in one
// slot satisfied their SINR constraints *in the presence of* the failed
// transmitters of that slot, so a-fortiori they are feasible alone.
//
// No polylog guarantee is claimed (that is exactly the open problem); the
// benchmark measures how far the protocol lands from the centralized
// Section-5 algorithm.
#ifndef OISCHED_CORE_DISTRIBUTED_H
#define OISCHED_CORE_DISTRIBUTED_H

#include <cstdint>
#include <span>

#include "core/instance.h"
#include "core/schedule.h"
#include "sinr/gain_matrix.h"

namespace oisched {

struct DistributedOptions {
  std::uint64_t seed = 1;
  double initial_probability = 0.5;
  double backoff = 0.5;        // multiplicative decrease after a failed attempt
  double recovery = 1.2;       // multiplicative increase after an idle slot
  double min_probability = 1e-3;
  double max_probability = 0.5;
  int max_slots = 1 << 20;     // safety bound; the protocol drains long before
  /// gain_matrix answers the per-slot SINR checks from precomputed tables;
  /// any other value recomputes from the metric. Identical results.
  FeasibilityEngine engine = FeasibilityEngine::gain_matrix;
  /// Storage backend of the gain_matrix engine's tables (results are
  /// backend-independent).
  GainBackend storage = GainBackend::dense;
};

struct DistributedResult {
  Schedule schedule;                 // color = slot of successful delivery
  std::size_t slots = 0;             // slots until the last request drained
  std::size_t transmissions = 0;     // total attempts (energy/contention proxy)
  std::size_t collisions = 0;        // failed attempts
  bool drained = false;              // all requests delivered within max_slots
};

/// Runs the protocol until every request has been delivered once (or
/// max_slots elapse). `powers` is the oblivious assignment all stations
/// use, e.g. SqrtPower{}.assign(...).
[[nodiscard]] DistributedResult distributed_coloring(
    const Instance& instance, std::span<const double> powers, const SinrParams& params,
    Variant variant, const DistributedOptions& options = {});

}  // namespace oisched

#endif  // OISCHED_CORE_DISTRIBUTED_H
