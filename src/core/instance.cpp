#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "sinr/gain_matrix.h"
#include "util/error.h"

namespace oisched {

/// Shared (across copies) cache of gain tables. Every entry owns a copy of
/// the requests and the metric handle, so a GainMatrix handed out stays
/// valid regardless of eviction or the originating Instance's lifetime.
struct Instance::GainCache {
  struct Entry {
    Entry(std::shared_ptr<const MetricSpace> metric_in, std::vector<Request> requests_in,
          std::vector<double> powers_in, double alpha_in, Variant variant_in,
          bool with_sender_gains_in)
        : metric(std::move(metric_in)),
          requests(std::move(requests_in)),
          powers(std::move(powers_in)),
          alpha(alpha_in),
          variant(variant_in),
          with_sender_gains(with_sender_gains_in),
          gains(*metric, requests, powers, alpha, variant, with_sender_gains) {}

    std::shared_ptr<const MetricSpace> metric;
    std::vector<Request> requests;
    std::vector<double> powers;
    double alpha;
    Variant variant;
    bool with_sender_gains;
    GainMatrix gains;  // declared last: references the members above

    [[nodiscard]] bool matches(std::span<const double> p, double a, Variant v,
                               bool sender) const {
      return a == alpha && v == variant && sender == with_sender_gains &&
             std::equal(p.begin(), p.end(), powers.begin(), powers.end());
    }
  };

  /// Bounds the O(n^2)-sized tables kept alive per instance; in practice an
  /// instance sees at most (powers x variant) ~ 2-3 distinct keys.
  static constexpr std::size_t kMaxEntries = 4;

  std::mutex mutex;
  std::vector<std::shared_ptr<Entry>> entries;  // most recently used first
};

Instance::Instance(std::shared_ptr<const MetricSpace> metric, std::vector<Request> requests)
    : metric_(std::move(metric)),
      requests_(std::move(requests)),
      gain_cache_(std::make_shared<GainCache>()) {
  require(metric_ != nullptr, "Instance: metric must be set");
  lengths_.reserve(requests_.size());
  for (const Request& r : requests_) {
    require(r.u < metric_->size() && r.v < metric_->size(),
            "Instance: request endpoint out of metric range");
    const double d = metric_->distance(r.u, r.v);
    require(std::isfinite(d) && d > 0.0,
            "Instance: request endpoints must be distinct points at finite distance");
    lengths_.push_back(d);
  }
}

std::shared_ptr<const GainMatrix> Instance::gains(std::span<const double> powers,
                                                  double alpha, Variant variant,
                                                  bool with_sender_gains) const {
  require(powers.size() == requests_.size(), "Instance::gains: one power per request");
  // The bidirectional variant always builds the sender-side table, so the
  // flag changes nothing there — normalize it out of the key to avoid a
  // bit-identical duplicate build.
  if (variant == Variant::bidirectional) with_sender_gains = false;
  std::lock_guard<std::mutex> lock(gain_cache_->mutex);
  auto& entries = gain_cache_->entries;
  // The aliasing shared_ptr pins the whole entry (metric handle, request
  // and power copies) for as long as any caller holds the matrix.
  const auto alias = [](const std::shared_ptr<GainCache::Entry>& entry) {
    return std::shared_ptr<const GainMatrix>(entry, &entry->gains);
  };
  for (std::size_t k = 0; k < entries.size(); ++k) {
    if (entries[k]->matches(powers, alpha, variant, with_sender_gains)) {
      if (k != 0) std::rotate(entries.begin(), entries.begin() + k, entries.begin() + k + 1);
      return alias(entries.front());
    }
  }
  auto entry = std::make_shared<GainCache::Entry>(
      metric_, std::vector<Request>(requests_.begin(), requests_.end()),
      std::vector<double>(powers.begin(), powers.end()), alpha, variant,
      with_sender_gains);
  entries.insert(entries.begin(), std::move(entry));
  if (entries.size() > GainCache::kMaxEntries) entries.pop_back();
  return alias(entries.front());
}

std::size_t Instance::cached_gain_tables() const {
  std::lock_guard<std::mutex> lock(gain_cache_->mutex);
  return gain_cache_->entries.size();
}

const Request& Instance::request(std::size_t i) const {
  require(i < requests_.size(), "Instance: request index out of range");
  return requests_[i];
}

double Instance::length(std::size_t i) const {
  require(i < lengths_.size(), "Instance: request index out of range");
  return lengths_[i];
}

double Instance::loss(std::size_t i, double alpha) const {
  return path_loss(length(i), alpha);
}

std::vector<std::size_t> Instance::all_indices() const {
  std::vector<std::size_t> idx(requests_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

}  // namespace oisched
