#include "core/instance.h"

#include <cmath>
#include <numeric>

#include "util/error.h"

namespace oisched {

Instance::Instance(std::shared_ptr<const MetricSpace> metric, std::vector<Request> requests)
    : metric_(std::move(metric)), requests_(std::move(requests)) {
  require(metric_ != nullptr, "Instance: metric must be set");
  lengths_.reserve(requests_.size());
  for (const Request& r : requests_) {
    require(r.u < metric_->size() && r.v < metric_->size(),
            "Instance: request endpoint out of metric range");
    const double d = metric_->distance(r.u, r.v);
    require(std::isfinite(d) && d > 0.0,
            "Instance: request endpoints must be distinct points at finite distance");
    lengths_.push_back(d);
  }
}

const Request& Instance::request(std::size_t i) const {
  require(i < requests_.size(), "Instance: request index out of range");
  return requests_[i];
}

double Instance::length(std::size_t i) const {
  require(i < lengths_.size(), "Instance: request index out of range");
  return lengths_[i];
}

double Instance::loss(std::size_t i, double alpha) const {
  return path_loss(length(i), alpha);
}

std::vector<std::size_t> Instance::all_indices() const {
  std::vector<std::size_t> idx(requests_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

}  // namespace oisched
