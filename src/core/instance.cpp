#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "sinr/gain_matrix.h"
#include "util/error.h"

namespace oisched {

/// Shared (across copies) cache of gain tables. Every entry owns the
/// metric handle (the matrix itself copies the requests and powers), so a
/// GainMatrix handed out stays valid regardless of eviction or the
/// originating Instance's lifetime. Entries are inserted key-only under the
/// list mutex and built afterwards through a per-entry once_flag — the
/// O(n^2) cold build never holds the cache lock, so hits on other keys
/// proceed while a miss builds (ROADMAP's cold-build serialization item).
struct Instance::GainCache {
  struct Entry {
    std::shared_ptr<const MetricSpace> metric;
    std::vector<double> powers;
    double alpha = 0.0;
    Variant variant = Variant::directed;
    bool with_sender_gains = false;
    GainBackend backend = GainBackend::dense;
    std::once_flag built;
    std::unique_ptr<const GainMatrix> gains;  // set exactly once via `built`

    [[nodiscard]] bool matches(std::span<const double> p, double a, Variant v,
                               bool sender, GainBackend b) const {
      return a == alpha && v == variant && sender == with_sender_gains &&
             b == backend && std::equal(p.begin(), p.end(), powers.begin(), powers.end());
    }
  };

  /// Bounds the O(n^2)-sized tables kept alive per instance; in practice an
  /// instance sees at most (powers x variant x backend) ~ 2-4 distinct keys.
  static constexpr std::size_t kMaxEntries = 4;

  std::mutex mutex;
  std::vector<std::shared_ptr<Entry>> entries;  // most recently used first
};

Instance::Instance(std::shared_ptr<const MetricSpace> metric, std::vector<Request> requests)
    : metric_(std::move(metric)),
      requests_(std::move(requests)),
      gain_cache_(std::make_shared<GainCache>()) {
  require(metric_ != nullptr, "Instance: metric must be set");
  lengths_.reserve(requests_.size());
  for (const Request& r : requests_) {
    require(r.u < metric_->size() && r.v < metric_->size(),
            "Instance: request endpoint out of metric range");
    const double d = metric_->distance(r.u, r.v);
    require(std::isfinite(d) && d > 0.0,
            "Instance: request endpoints must be distinct points at finite distance");
    lengths_.push_back(d);
  }
}

std::shared_ptr<const GainMatrix> Instance::gains(std::span<const double> powers,
                                                  double alpha, Variant variant,
                                                  bool with_sender_gains,
                                                  GainBackend backend) const {
  require(powers.size() == requests_.size(), "Instance::gains: one power per request");
  require(backend != GainBackend::appendable,
          "Instance::gains: appendable tables grow and cannot be shared through the "
          "cache; construct a GainMatrix directly");
  require(backend != GainBackend::computed,
          "Instance::gains: computed tables carry a single-owner row cache and "
          "cannot be shared through the cache; construct a GainMatrix directly");
  // The bidirectional variant always builds the sender-side table, so the
  // flag changes nothing there — normalize it out of the key to avoid a
  // bit-identical duplicate build.
  if (variant == Variant::bidirectional) with_sender_gains = false;
  std::shared_ptr<GainCache::Entry> entry;
  {
    std::lock_guard<std::mutex> lock(gain_cache_->mutex);
    auto& entries = gain_cache_->entries;
    for (std::size_t k = 0; k < entries.size(); ++k) {
      if (entries[k]->matches(powers, alpha, variant, with_sender_gains, backend)) {
        if (k != 0) {
          std::rotate(entries.begin(), entries.begin() + k, entries.begin() + k + 1);
        }
        entry = entries.front();
        break;
      }
    }
    if (entry == nullptr) {
      // Insert the key only; the build happens below, outside the lock.
      entry = std::make_shared<GainCache::Entry>();
      entry->metric = metric_;
      entry->powers.assign(powers.begin(), powers.end());
      entry->alpha = alpha;
      entry->variant = variant;
      entry->with_sender_gains = with_sender_gains;
      entry->backend = backend;
      entries.insert(entries.begin(), entry);
      // Eviction is safe mid-build elsewhere: every caller of an entry holds
      // its shared_ptr, so a popped entry finishes building and stays valid
      // for them.
      if (entries.size() > GainCache::kMaxEntries) entries.pop_back();
    }
  }
  // Per-entry once-initialization: only callers of THIS key wait here;
  // a failed build leaves the flag unset so the next caller retries.
  std::call_once(entry->built, [&] {
    entry->gains = std::make_unique<const GainMatrix>(
        *entry->metric, requests_, entry->powers, entry->alpha, entry->variant,
        entry->with_sender_gains, entry->backend);
  });
  // The aliasing shared_ptr pins the whole entry (metric handle and the
  // matrix's own request/power copies) for as long as any caller holds it.
  return std::shared_ptr<const GainMatrix>(entry, entry->gains.get());
}

std::size_t Instance::cached_gain_tables() const {
  std::lock_guard<std::mutex> lock(gain_cache_->mutex);
  return gain_cache_->entries.size();
}

const Request& Instance::request(std::size_t i) const {
  require(i < requests_.size(), "Instance: request index out of range");
  return requests_[i];
}

double Instance::length(std::size_t i) const {
  require(i < lengths_.size(), "Instance: request index out of range");
  return lengths_[i];
}

double Instance::loss(std::size_t i, double alpha) const {
  return path_loss(length(i), alpha);
}

std::vector<std::size_t> Instance::all_indices() const {
  std::vector<std::size_t> idx(requests_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

}  // namespace oisched
