// An interference-scheduling instance: a metric space plus n requests.
#ifndef OISCHED_CORE_INSTANCE_H
#define OISCHED_CORE_INSTANCE_H

#include <memory>
#include <span>
#include <vector>

#include "metric/metric_space.h"
#include "sinr/gain_storage.h"
#include "sinr/model.h"

namespace oisched {

class GainMatrix;

/// Bundles the point set and the communication requests of one problem
/// instance. Immutable after construction; request lengths are precomputed.
///
/// Instances also own a small cache of GainMatrix tables keyed by
/// (powers, alpha, variant, sender-gains) — repeated queries across
/// algorithms and replay steps share one O(n^2) build instead of paying it
/// per call. Copies and moves share the cache (the underlying data is
/// immutable either way).
class Instance {
 public:
  Instance(std::shared_ptr<const MetricSpace> metric, std::vector<Request> requests);

  [[nodiscard]] const MetricSpace& metric() const noexcept { return *metric_; }
  [[nodiscard]] const std::shared_ptr<const MetricSpace>& metric_ptr() const noexcept {
    return metric_;
  }
  [[nodiscard]] std::span<const Request> requests() const noexcept { return requests_; }
  [[nodiscard]] const Request& request(std::size_t i) const;
  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }

  /// Distance between the endpoints of request i.
  [[nodiscard]] double length(std::size_t i) const;
  /// Loss of request i's own link: length^alpha.
  [[nodiscard]] double loss(std::size_t i, double alpha) const;

  /// {0, 1, ..., size()-1}; handy for whole-instance algorithm calls.
  [[nodiscard]] std::vector<std::size_t> all_indices() const;

  /// The gain-matrix tables for (powers, alpha, variant, with_sender_gains,
  /// backend), built on first use and cached (bitwise power equality keys
  /// the cache; a handful of entries are kept, least-recently-used first
  /// out; the sender-gains flag is ignored for the bidirectional variant,
  /// which always builds that table). The returned matrix owns copies of
  /// everything it references, so it stays valid even after eviction or the
  /// instance's destruction. Thread-safe, with per-entry once-
  /// initialization: a cold build runs outside the cache lock, so
  /// concurrent hits on other keys never wait behind a miss — only callers
  /// of the same key share (and wait for) its one build. The appendable
  /// backend is rejected here: growable tables are single-owner by nature;
  /// construct a GainMatrix directly instead.
  [[nodiscard]] std::shared_ptr<const GainMatrix> gains(
      std::span<const double> powers, double alpha, Variant variant,
      bool with_sender_gains = false, GainBackend backend = GainBackend::dense) const;

  /// Number of gain tables currently cached (tests observe eviction).
  [[nodiscard]] std::size_t cached_gain_tables() const;

 private:
  struct GainCache;

  std::shared_ptr<const MetricSpace> metric_;
  std::vector<Request> requests_;
  std::vector<double> lengths_;
  std::shared_ptr<GainCache> gain_cache_;
};

}  // namespace oisched

#endif  // OISCHED_CORE_INSTANCE_H
