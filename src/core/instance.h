// An interference-scheduling instance: a metric space plus n requests.
#ifndef OISCHED_CORE_INSTANCE_H
#define OISCHED_CORE_INSTANCE_H

#include <memory>
#include <span>
#include <vector>

#include "metric/metric_space.h"
#include "sinr/model.h"

namespace oisched {

/// Bundles the point set and the communication requests of one problem
/// instance. Immutable after construction; request lengths are precomputed.
class Instance {
 public:
  Instance(std::shared_ptr<const MetricSpace> metric, std::vector<Request> requests);

  [[nodiscard]] const MetricSpace& metric() const noexcept { return *metric_; }
  [[nodiscard]] const std::shared_ptr<const MetricSpace>& metric_ptr() const noexcept {
    return metric_;
  }
  [[nodiscard]] std::span<const Request> requests() const noexcept { return requests_; }
  [[nodiscard]] const Request& request(std::size_t i) const;
  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }

  /// Distance between the endpoints of request i.
  [[nodiscard]] double length(std::size_t i) const;
  /// Loss of request i's own link: length^alpha.
  [[nodiscard]] double loss(std::size_t i, double alpha) const;

  /// {0, 1, ..., size()-1}; handy for whole-instance algorithm calls.
  [[nodiscard]] std::vector<std::size_t> all_indices() const;

 private:
  std::shared_ptr<const MetricSpace> metric_;
  std::vector<Request> requests_;
  std::vector<double> lengths_;
};

}  // namespace oisched

#endif  // OISCHED_CORE_INSTANCE_H
