#include "core/power_assignment.h"

#include <cmath>

#include "util/error.h"

namespace oisched {

std::vector<double> PowerAssignment::assign(const Instance& instance, double alpha) const {
  std::vector<double> powers;
  powers.reserve(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const double p = power_for_loss(instance.loss(i, alpha));
    require(std::isfinite(p) && p > 0.0,
            "PowerAssignment: powers must be positive and finite (assignment '" + name() +
                "')");
    powers.push_back(p);
  }
  return powers;
}

double SqrtPower::power_for_loss(double loss) const {
  require(loss > 0.0, "SqrtPower: loss must be positive");
  return std::sqrt(loss);
}

ExponentPower::ExponentPower(double tau) : tau_(tau) {
  require(std::isfinite(tau), "ExponentPower: tau must be finite");
}

double ExponentPower::power_for_loss(double loss) const {
  require(loss > 0.0, "ExponentPower: loss must be positive");
  return std::pow(loss, tau_);
}

std::string ExponentPower::name() const {
  return "loss^" + std::to_string(tau_);
}

CustomPower::CustomPower(std::function<double(double)> f, std::string name)
    : f_(std::move(f)), name_(std::move(name)) {
  require(static_cast<bool>(f_), "CustomPower: function must be callable");
}

double CustomPower::power_for_loss(double loss) const {
  return f_(loss);
}

std::vector<std::unique_ptr<PowerAssignment>> standard_assignments() {
  std::vector<std::unique_ptr<PowerAssignment>> out;
  out.push_back(std::make_unique<UniformPower>());
  out.push_back(std::make_unique<SqrtPower>());
  out.push_back(std::make_unique<LinearPower>());
  out.push_back(std::make_unique<ExponentPower>(1.5));
  return out;
}

}  // namespace oisched
