#include "core/exact.h"

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sinr/gain_matrix.h"
#include "sinr/power_control.h"
#include "util/error.h"

namespace oisched {
namespace {

using Mask = std::uint32_t;

std::vector<std::size_t> mask_to_indices(Mask mask) {
  std::vector<std::size_t> idx;
  for (Mask m = mask; m != 0; m &= m - 1) {
    idx.push_back(static_cast<std::size_t>(std::countr_zero(m)));
  }
  return idx;
}

/// Feasibility of every subset, using downward closure: a mask is checked
/// with the (possibly expensive) oracle only when all its one-smaller
/// submasks are feasible.
std::vector<char> feasible_table(std::size_t n,
                                 const std::function<bool(Mask)>& oracle) {
  const Mask full = (Mask{1} << n) - 1;
  std::vector<char> feasible(full + 1, 0);
  feasible[0] = 1;
  for (Mask mask = 1; mask <= full; ++mask) {
    bool submasks_ok = true;
    for (Mask m = mask; m != 0; m &= m - 1) {
      const Mask without = mask & ~(m & (~m + 1));
      if (!feasible[without]) {
        submasks_ok = false;
        break;
      }
    }
    feasible[mask] = submasks_ok && oracle(mask) ? 1 : 0;
  }
  return feasible;
}

/// Minimum partition of {0..n-1} into feasible subsets, via subset DP.
ExactResult partition_dp(std::size_t n, const std::vector<char>& feasible) {
  const Mask full = (Mask{1} << n) - 1;
  constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;
  std::vector<int> dp(full + 1, kUnreachable);
  std::vector<Mask> choice(full + 1, 0);
  dp[0] = 0;
  for (Mask mask = 1; mask <= full; ++mask) {
    // Fix the lowest uncovered request; it must belong to some class, which
    // restricts the submask enumeration enough to be fast.
    const Mask lowest = mask & (~mask + 1);
    for (Mask sub = mask; sub != 0; sub = (sub - 1) & mask) {
      if (!(sub & lowest)) continue;
      if (!feasible[sub]) continue;
      const int cand = dp[mask & ~sub] + 1;
      if (cand < dp[mask]) {
        dp[mask] = cand;
        choice[mask] = sub;
      }
    }
  }
  ensure(dp[full] < kUnreachable, "exact: full instance must be partitionable");

  ExactResult result;
  result.num_colors = dp[full];
  result.schedule.color_of.assign(n, -1);
  result.schedule.num_colors = dp[full];
  int color = 0;
  for (Mask rest = full; rest != 0; rest &= ~choice[rest], ++color) {
    for (const std::size_t i : mask_to_indices(choice[rest])) {
      result.schedule.color_of[i] = color;
    }
  }
  return result;
}

}  // namespace

ExactResult exact_min_colors(const Instance& instance, std::span<const double> powers,
                             const SinrParams& params, Variant variant) {
  const std::size_t n = instance.size();
  require(n >= 1 && n <= 16, "exact_min_colors: limited to 1 <= n <= 16");
  require(powers.size() == n, "exact_min_colors: one power per request");
  params.validate();
  // The oracle runs up to 2^n times over the same requests — exactly the
  // access pattern the shared gain-matrix engine exists for.
  const auto gains = instance.gains(powers, params.alpha, variant);
  auto oracle = [&](Mask mask) {
    const auto idx = mask_to_indices(mask);
    return check_feasible(*gains, idx, params).feasible;
  };
  return partition_dp(n, feasible_table(n, oracle));
}

ExactResult exact_min_colors_power_control(const Instance& instance,
                                           const SinrParams& params, Variant variant) {
  const std::size_t n = instance.size();
  require(n >= 1 && n <= 13, "exact_min_colors_power_control: limited to 1 <= n <= 13");
  params.validate();
  auto oracle = [&](Mask mask) {
    const auto idx = mask_to_indices(mask);
    return power_control_feasible(instance.metric(), instance.requests(), idx, params,
                                  variant)
        .feasible;
  };
  return partition_dp(n, feasible_table(n, oracle));
}

}  // namespace oisched
