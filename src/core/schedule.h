// Schedules (colorings) and their validation.
//
// A schedule assigns every request a color in {0, ..., num_colors-1}; the
// number of colors is the schedule length the paper minimizes. Validation
// re-checks every color class against the SINR constraints from scratch
// (independent of whatever incremental bookkeeping produced the schedule).
#ifndef OISCHED_CORE_SCHEDULE_H
#define OISCHED_CORE_SCHEDULE_H

#include <span>
#include <vector>

#include "core/instance.h"
#include "sinr/feasibility.h"

namespace oisched {

struct Schedule {
  std::vector<int> color_of;  // color of request i, or -1 if unscheduled
  int num_colors = 0;

  [[nodiscard]] bool complete() const noexcept;
};

/// Groups request indices by color. Colors index the outer vector.
[[nodiscard]] std::vector<std::vector<std::size_t>> color_classes(const Schedule& schedule);

/// Renumbers colors so that empty classes disappear (e.g. idle slots of the
/// distributed protocol); relative order of the used colors is preserved.
[[nodiscard]] Schedule compact_schedule(const Schedule& schedule);

struct ScheduleReport {
  bool valid = false;       // complete and every class feasible
  int num_colors = 0;
  double worst_margin = 0;  // min over classes of the class margin
  std::vector<int> infeasible_colors;
};

/// Full re-validation of a schedule under fixed powers.
[[nodiscard]] ScheduleReport validate_schedule(const Instance& instance,
                                               std::span<const double> powers,
                                               const Schedule& schedule,
                                               const SinrParams& params, Variant variant);

/// Validation for schedules produced with per-class power control: powers
/// may differ between classes (`class_powers[c]` aligned with the members of
/// class c in increasing request order).
[[nodiscard]] ScheduleReport validate_schedule_classwise(
    const Instance& instance, std::span<const std::vector<double>> class_powers,
    const Schedule& schedule, const SinrParams& params, Variant variant);

/// Total transmission energy of a schedule: every request transmits for one
/// slot at its power, but powers are scale-free in the noise-free model, so
/// each color class is first rescaled to the smallest factor that meets the
/// SINR constraints with the given ambient noise (> 0 required). This makes
/// energies of different assignments comparable (Section 6's efficiency
/// discussion).
[[nodiscard]] double schedule_energy(const Instance& instance, std::span<const double> powers,
                                     const Schedule& schedule, const SinrParams& params,
                                     Variant variant);

}  // namespace oisched

#endif  // OISCHED_CORE_SCHEDULE_H
