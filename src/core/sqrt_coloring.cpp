#include "core/sqrt_coloring.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/power_assignment.h"
#include "lp/simplex.h"
#include "sinr/feasibility.h"
#include "sinr/row_kernels.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace oisched {
namespace {

/// One round of the Section-5 selection: picks a large set of requests that
/// (after thinning) shares one color under the square-root assignment.
class RoundSelector {
 public:
  /// `gains` enables the precomputed-gain path (pass nullptr for the
  /// metric-recomputing one); both paths are bit-for-bit equivalent.
  RoundSelector(const Instance& instance, std::span<const double> powers,
                const SinrParams& params, Variant variant,
                const SqrtColoringOptions& options, const GainMatrix* gains, Rng& rng,
                SqrtColoringStats& stats, ThreadPool* scan_pool)
      : instance_(instance),
        powers_(powers),
        params_(params),
        variant_(variant),
        options_(options),
        gains_(gains),
        rng_(rng),
        stats_(stats),
        scan_pool_(scan_pool) {
    if (gains_ != nullptr) {
      acc_v_.assign(instance_.size(), 0.0);
      if (variant_ == Variant::bidirectional) acc_u_.assign(instance_.size(), 0.0);
    }
  }

  [[nodiscard]] std::vector<std::size_t> select(std::span<const std::size_t> uncolored) {
    selection_.clear();
    const auto classes = distance_classes(uncolored);
    for (const auto& [exponent, members] : classes) {
      process_class(members);
    }
    // Proposition-3 thinning: the union satisfies the constraints only up to
    // a constant gain factor; extract a beta-feasible subset, longest first.
    std::vector<std::size_t> order = selection_;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return instance_.length(a) > instance_.length(b);
    });
    std::vector<std::size_t> final_set =
        gains_ != nullptr
            ? greedy_feasible_subset(*gains_, order, params_)
            : greedy_feasible_subset(instance_.metric(), instance_.requests(), powers_,
                                     order, params_, variant_);
    if (final_set.empty() && !uncolored.empty()) {
      // Safety net: a singleton is always feasible in the noise-free model.
      final_set.push_back(uncolored.front());
    }
    return final_set;
  }

 private:
  /// Buckets requests by floor(log_base(length / min_length)).
  [[nodiscard]] std::map<int, std::vector<std::size_t>> distance_classes(
      std::span<const std::size_t> uncolored) const {
    double min_len = std::numeric_limits<double>::infinity();
    for (const std::size_t j : uncolored) min_len = std::min(min_len, instance_.length(j));
    std::map<int, std::vector<std::size_t>> classes;
    for (const std::size_t j : uncolored) {
      const double ratio = instance_.length(j) / min_len;
      const int exponent =
          static_cast<int>(std::floor(std::log(ratio) / std::log(options_.class_base) +
                                      1e-12));
      classes[exponent].push_back(j);
    }
    return classes;
  }

  /// Interference at node w from the current selection (square-root powers).
  [[nodiscard]] double selection_interference(NodeId w) const {
    return interference_at(instance_.metric(), instance_.requests(), powers_, selection_, w,
                           params_.alpha, variant_, selection_.size());
  }

  /// Appends `chosen` to the selection, keeping the per-request interference
  /// accumulators of the gain path in sync (accumulation order matches the
  /// order selection_interference sums in, so both paths agree bit-for-bit).
  /// The full-row accumulation walks resident row runs and streams them
  /// through the slot-wise kernels — each acc slot still receives exactly
  /// one add per chosen row, in ascending index order, so the sums match
  /// the per-element loop this replaces bit for bit.
  void extend_selection(std::span<const std::size_t> chosen) {
    selection_.insert(selection_.end(), chosen.begin(), chosen.end());
    if (gains_ == nullptr) return;
    const std::size_t n = instance_.size();
    for (const std::size_t s : chosen) {
      for (std::size_t i = 0; i < n;) {
        const std::span<const double> run = gains_->row_run_v(s, i);
        kernels::acc_add_row(acc_v_.data() + i, run.data(), run.size());
        i += run.size();
      }
      if (variant_ != Variant::bidirectional) continue;
      for (std::size_t i = 0; i < n;) {
        const std::span<const double> run = gains_->row_run_u(s, i);
        kernels::acc_add_row(acc_u_.data() + i, run.data(), run.size());
        i += run.size();
      }
    }
  }

  /// The set V' of the paper: a request of the current class survives when
  /// both of its endpoints still tolerate the already-selected requests with
  /// a factor-2 slack (gain beta/2).
  [[nodiscard]] bool endpoints_tolerate(std::size_t j) const {
    if (gains_ != nullptr) {
      const double tolerance = gains_->signal(j) / (2.0 * params_.beta);
      if (acc_v_[j] > tolerance) return false;
      if (variant_ == Variant::bidirectional && acc_u_[j] > tolerance) return false;
      return true;
    }
    const Request& r = instance_.request(j);
    const double tolerance =
        powers_[j] / instance_.loss(j, params_.alpha) / (2.0 * params_.beta);
    if (selection_interference(r.v) > tolerance) return false;
    if (variant_ == Variant::bidirectional && selection_interference(r.u) > tolerance) {
      return false;
    }
    return true;
  }

  /// Do all members of `sample` satisfy their SINR constraints at gain
  /// beta/2, counting interference from the selection and the sample?
  /// (Earlier classes' constraints are deliberately not rechecked — the
  /// paper bounds that backwash separately, Lemma 19, and the final
  /// Proposition-3 thinning repairs it.)
  [[nodiscard]] bool sample_feasible(std::span<const std::size_t> sample) const {
    if (gains_ != nullptr) return sample_feasible_gains(sample);
    std::vector<std::size_t> combined(selection_.begin(), selection_.end());
    combined.insert(combined.end(), sample.begin(), sample.end());
    const SinrParams relaxed = params_.with_beta(params_.beta / 2.0);
    for (std::size_t pos = 0; pos < sample.size(); ++pos) {
      const std::size_t j = sample[pos];
      const Request& r = instance_.request(j);
      const double signal = powers_[j] / instance_.loss(j, params_.alpha);
      const std::size_t pos_in_combined = selection_.size() + pos;
      const double at_v =
          interference_at(instance_.metric(), instance_.requests(), powers_, combined, r.v,
                          params_.alpha, variant_, pos_in_combined);
      if (!(signal > relaxed.beta * at_v)) return false;
      if (variant_ == Variant::bidirectional) {
        const double at_u =
            interference_at(instance_.metric(), instance_.requests(), powers_, combined,
                            r.u, params_.alpha, variant_, pos_in_combined);
        if (!(signal > relaxed.beta * at_u)) return false;
      }
    }
    return true;
  }

  /// Gain-path sample_feasible: the selection's contribution comes from the
  /// accumulators (same partial sums selection_interference would produce),
  /// the sample's from table lookups in the same order as the direct scan.
  [[nodiscard]] bool sample_feasible_gains(std::span<const std::size_t> sample) const {
    const SinrParams relaxed = params_.with_beta(params_.beta / 2.0);
    for (std::size_t pos = 0; pos < sample.size(); ++pos) {
      const std::size_t j = sample[pos];
      const double signal = gains_->signal(j);
      double at_v = acc_v_[j];
      for (std::size_t other = 0; other < sample.size(); ++other) {
        if (other == pos) continue;
        at_v += gains_->at_v(sample[other], j);
      }
      if (!(signal > relaxed.beta * at_v)) return false;
      if (variant_ == Variant::bidirectional) {
        double at_u = acc_u_[j];
        for (std::size_t other = 0; other < sample.size(); ++other) {
          if (other == pos) continue;
          at_u += gains_->at_u(sample[other], j);
        }
        if (!(signal > relaxed.beta * at_u)) return false;
      }
    }
    return true;
  }

  /// Greedily removes sample members (worst violators last in, first out)
  /// until `sample_feasible` holds.
  [[nodiscard]] std::vector<std::size_t> trim_sample(std::vector<std::size_t> sample) const {
    // Shortest requests tolerate the least interference; drop them first.
    std::sort(sample.begin(), sample.end(), [&](std::size_t a, std::size_t b) {
      return instance_.length(a) > instance_.length(b);
    });
    while (!sample.empty() && !sample_feasible(sample)) sample.pop_back();
    return sample;
  }

  void process_class(const std::vector<std::size_t>& members) {
    // The V' filter: a pure per-request predicate against the current
    // selection. With a scan pool, workers evaluate disjoint strides and
    // survivors are collected in member order afterwards, so the candidate
    // list is bit-identical to the sequential scan's.
    std::vector<std::size_t> candidates;
    if (scan_pool_ != nullptr && members.size() > 1) {
      const std::size_t workers =
          std::min(scan_pool_->num_threads(), members.size());
      std::vector<char> tolerated(members.size(), 0);
      for (std::size_t t = 0; t < workers; ++t) {
        scan_pool_->submit([&, t, workers] {
          for (std::size_t k = t; k < members.size(); k += workers) {
            tolerated[k] = endpoints_tolerate(members[k]) ? 1 : 0;
          }
        });
      }
      scan_pool_->wait_idle();
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (tolerated[k] != 0) candidates.push_back(members[k]);
      }
    } else {
      for (const std::size_t j : members) {
        if (endpoints_tolerate(j)) candidates.push_back(j);
      }
    }
    if (candidates.empty()) return;

    std::vector<std::size_t> chosen;
    if (options_.use_lp && candidates.size() <= options_.lp_variable_limit &&
        candidates.size() >= 2) {
      chosen = lp_select(candidates);
      ++stats_.lp_solves;
    } else {
      chosen = trim_sample(candidates);
      ++stats_.greedy_fallbacks;
    }
    extend_selection(chosen);
  }

  /// Lemma 16: LP relaxation of the Claim-17 interference budgets, then
  /// randomized rounding with alteration.
  [[nodiscard]] std::vector<std::size_t> lp_select(
      const std::vector<std::size_t>& candidates) {
    // Budget nodes: every endpoint of a candidate, keyed with a
    // (request, endpoint-side) representative so the gain path can address
    // the tables; any candidate touching the node works since gains depend
    // only on the node itself.
    std::map<NodeId, std::pair<std::size_t, bool>> node_rep;  // node -> (request, is_u)
    for (const std::size_t j : candidates) {
      node_rep.emplace(instance_.request(j).u, std::make_pair(j, true));
      node_rep.emplace(instance_.request(j).v, std::make_pair(j, false));
    }

    double min_len = std::numeric_limits<double>::infinity();
    for (const std::size_t j : candidates) {
      min_len = std::min(min_len, instance_.length(j));
    }
    // Claim 17 in unscaled units: any feasible class T keeps the
    // interference at every node below (2^alpha / beta) times the strongest
    // class signal, which is 1/sqrt(min_loss) under square-root powers.
    const double budget = std::pow(2.0, params_.alpha) / params_.beta /
                          std::sqrt(path_loss(min_len, params_.alpha));

    LpProblem lp;
    lp.num_vars = candidates.size();
    lp.objective.assign(lp.num_vars, 1.0);
    lp.upper_bounds.assign(lp.num_vars, 1.0);
    for (const auto& [w, rep_entry] : node_rep) {
      std::vector<double> row(lp.num_vars, 0.0);
      bool nontrivial = false;
      const auto [rep, rep_is_u] = rep_entry;
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const Request& r = instance_.request(candidates[k]);
        if (r.u == w || r.v == w) continue;  // own-endpoint terms are excluded
        if (gains_ != nullptr) {
          const double g = rep_is_u ? gains_->at_u(candidates[k], rep)
                                    : gains_->at_v(candidates[k], rep);
          if (std::isinf(g)) continue;  // co-located: the direct path skips l == 0
          row[k] = g;
        } else {
          const double l =
              variant_ == Variant::directed
                  ? path_loss(instance_.metric().distance(r.u, w), params_.alpha)
                  : min_endpoint_loss(instance_.metric(), r, w, params_.alpha);
          if (l <= 0.0) continue;
          row[k] = powers_[candidates[k]] / l;
        }
        if (row[k] > 0.0) nontrivial = true;
      }
      if (nontrivial) lp.add_constraint(std::move(row), budget);
    }

    std::vector<double> x;
    if (lp.rows.empty()) {
      x.assign(lp.num_vars, 1.0);
    } else {
      const LpSolution sol = solve_lp(lp);
      if (sol.status != LpStatus::optimal) {
        // Numerically stuck LP: fall back to the greedy path.
        ++stats_.greedy_fallbacks;
        return trim_sample(candidates);
      }
      x = sol.x;
    }

    auto accepts = [&](std::span<const std::size_t> sample_local) {
      std::vector<std::size_t> sample;
      sample.reserve(sample_local.size());
      for (const std::size_t k : sample_local) sample.push_back(candidates[k]);
      return sample_feasible(sample);
    };
    auto trim = [&](std::vector<std::size_t> sample_local) {
      std::vector<std::size_t> sample;
      sample.reserve(sample_local.size());
      for (const std::size_t k : sample_local) sample.push_back(candidates[k]);
      sample = trim_sample(std::move(sample));
      // Translate back to local indices.
      std::vector<std::size_t> local;
      for (const std::size_t j : sample) {
        const auto it = std::find(candidates.begin(), candidates.end(), j);
        local.push_back(static_cast<std::size_t>(it - candidates.begin()));
      }
      return local;
    };
    const std::vector<std::size_t> local =
        randomized_round(x, rng_, accepts, trim, options_.rounding);

    std::vector<std::size_t> chosen;
    chosen.reserve(local.size());
    for (const std::size_t k : local) chosen.push_back(candidates[k]);

    // Augmentation: rounding at x_j / c leaves roughly a (1 - 1/c) fraction
    // of the LP mass on the table; greedily re-add whatever still fits (in
    // decreasing LP-weight order). Only additions that keep the sample
    // constraints at gain beta/2 are accepted, so the invariants of the
    // round are unchanged.
    std::vector<std::size_t> by_weight;
    for (std::size_t k = 0; k < candidates.size(); ++k) by_weight.push_back(k);
    std::sort(by_weight.begin(), by_weight.end(),
              [&](std::size_t a, std::size_t b) { return x[a] > x[b]; });
    std::vector<char> taken(candidates.size(), 0);
    for (const std::size_t k : local) taken[k] = 1;
    for (const std::size_t k : by_weight) {
      if (taken[k]) continue;
      chosen.push_back(candidates[k]);
      if (sample_feasible(chosen)) {
        taken[k] = 1;
      } else {
        chosen.pop_back();
      }
    }
    return chosen;
  }

  const Instance& instance_;
  std::span<const double> powers_;
  SinrParams params_;
  Variant variant_;
  const SqrtColoringOptions& options_;
  const GainMatrix* gains_;
  Rng& rng_;
  SqrtColoringStats& stats_;
  ThreadPool* scan_pool_;  // nullptr = sequential candidate scans
  std::vector<std::size_t> selection_;
  /// Gain path only: interference from selection_ at v_i / u_i for every i.
  std::vector<double> acc_v_;
  std::vector<double> acc_u_;
};

}  // namespace

SqrtColoringResult sqrt_coloring(const Instance& instance, const SinrParams& params,
                                 Variant variant, const SqrtColoringOptions& options) {
  params.validate();
  require(options.class_base > 1.0, "sqrt_coloring: class base must exceed 1");

  SqrtColoringResult result;
  result.powers = SqrtPower{}.assign(instance, params.alpha);
  result.schedule.color_of.assign(instance.size(), -1);

  std::shared_ptr<const GainMatrix> gains;
  if (options.engine == FeasibilityEngine::gain_matrix) {
    // The LP budgets interference at sender nodes too, so the directed
    // variant also needs the at_u table here.
    gains = instance.gains(result.powers, params.alpha, variant,
                           /*with_sender_gains=*/true, options.storage);
  }

  Rng rng(options.seed);
  std::optional<ThreadPool> scan_pool;
  if (options.scan_threads > 1) scan_pool.emplace(options.scan_threads);
  std::vector<std::size_t> uncolored = instance.all_indices();
  int color = 0;
  while (!uncolored.empty()) {
    RoundSelector selector(instance, result.powers, params, variant, options,
                           gains.get(), rng, result.stats,
                           scan_pool.has_value() ? &*scan_pool : nullptr);
    const std::vector<std::size_t> chosen = selector.select(uncolored);
    ensure(!chosen.empty(), "sqrt_coloring: a round must color at least one request");
    for (const std::size_t j : chosen) {
      result.schedule.color_of[j] = color;
    }
    std::vector<std::size_t> remaining;
    remaining.reserve(uncolored.size() - chosen.size());
    std::set<std::size_t> chosen_set(chosen.begin(), chosen.end());
    for (const std::size_t j : uncolored) {
      if (!chosen_set.contains(j)) remaining.push_back(j);
    }
    uncolored = std::move(remaining);
    ++color;
    ++result.stats.rounds;
  }
  result.schedule.num_colors = color;
  return result;
}

}  // namespace oisched
