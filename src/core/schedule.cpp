#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace oisched {

bool Schedule::complete() const noexcept {
  return std::all_of(color_of.begin(), color_of.end(), [](int c) { return c >= 0; });
}

std::vector<std::vector<std::size_t>> color_classes(const Schedule& schedule) {
  std::vector<std::vector<std::size_t>> classes(
      static_cast<std::size_t>(std::max(0, schedule.num_colors)));
  for (std::size_t i = 0; i < schedule.color_of.size(); ++i) {
    const int c = schedule.color_of[i];
    if (c < 0) continue;
    require(c < schedule.num_colors, "color_classes: color exceeds num_colors");
    classes[static_cast<std::size_t>(c)].push_back(i);
  }
  return classes;
}

Schedule compact_schedule(const Schedule& schedule) {
  std::vector<char> used(static_cast<std::size_t>(std::max(0, schedule.num_colors)), 0);
  for (const int c : schedule.color_of) {
    if (c >= 0) {
      require(c < schedule.num_colors, "compact_schedule: color exceeds num_colors");
      used[static_cast<std::size_t>(c)] = 1;
    }
  }
  std::vector<int> remap(used.size(), -1);
  int next = 0;
  for (std::size_t c = 0; c < used.size(); ++c) {
    if (used[c]) remap[c] = next++;
  }
  Schedule out;
  out.color_of.reserve(schedule.color_of.size());
  for (const int c : schedule.color_of) {
    out.color_of.push_back(c >= 0 ? remap[static_cast<std::size_t>(c)] : -1);
  }
  out.num_colors = next;
  return out;
}

ScheduleReport validate_schedule(const Instance& instance, std::span<const double> powers,
                                 const Schedule& schedule, const SinrParams& params,
                                 Variant variant) {
  require(schedule.color_of.size() == instance.size(),
          "validate_schedule: schedule size must match instance");
  ScheduleReport report;
  report.num_colors = schedule.num_colors;
  report.worst_margin = std::numeric_limits<double>::infinity();
  bool all_feasible = true;
  const auto classes = color_classes(schedule);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const FeasibilityReport fr = check_feasible(instance.metric(), instance.requests(),
                                                powers, classes[c], params, variant);
    report.worst_margin = std::min(report.worst_margin, fr.worst_margin);
    if (!fr.feasible) {
      all_feasible = false;
      report.infeasible_colors.push_back(static_cast<int>(c));
    }
  }
  report.valid = all_feasible && schedule.complete();
  return report;
}

ScheduleReport validate_schedule_classwise(const Instance& instance,
                                           std::span<const std::vector<double>> class_powers,
                                           const Schedule& schedule,
                                           const SinrParams& params, Variant variant) {
  require(schedule.color_of.size() == instance.size(),
          "validate_schedule_classwise: schedule size must match instance");
  require(class_powers.size() >= static_cast<std::size_t>(std::max(0, schedule.num_colors)),
          "validate_schedule_classwise: powers for every class required");
  ScheduleReport report;
  report.num_colors = schedule.num_colors;
  report.worst_margin = std::numeric_limits<double>::infinity();
  bool all_feasible = true;
  const auto classes = color_classes(schedule);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    require(class_powers[c].size() == classes[c].size(),
            "validate_schedule_classwise: class power vector size mismatch");
    // Expand the class powers into a full-length vector (non-members 0 —
    // they are excluded by the `active` span anyway).
    std::vector<double> powers(instance.size(), 1.0);
    for (std::size_t k = 0; k < classes[c].size(); ++k) {
      powers[classes[c][k]] = class_powers[c][k];
    }
    const FeasibilityReport fr = check_feasible(instance.metric(), instance.requests(),
                                                powers, classes[c], params, variant);
    report.worst_margin = std::min(report.worst_margin, fr.worst_margin);
    if (!fr.feasible) {
      all_feasible = false;
      report.infeasible_colors.push_back(static_cast<int>(c));
    }
  }
  report.valid = all_feasible && schedule.complete();
  return report;
}

double schedule_energy(const Instance& instance, std::span<const double> powers,
                       const Schedule& schedule, const SinrParams& params,
                       Variant variant) {
  require(params.noise > 0.0, "schedule_energy: needs ambient noise > 0 to fix the scale");
  const auto classes = color_classes(schedule);
  double total = 0.0;
  for (const auto& members : classes) {
    if (members.empty()) continue;
    // Smallest per-class scale s such that s*p meets the constraints with
    // noise: s > beta*noise / (signal_i - beta*I_i) for every constraint.
    double scale = 0.0;
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      const std::size_t i = members[pos];
      const Request& r = instance.request(i);
      const double signal = powers[i] / instance.loss(i, params.alpha);
      const NodeId constraint_nodes[2] = {r.v, r.u};
      const int num_constraints = variant == Variant::directed ? 1 : 2;
      for (int k = 0; k < num_constraints; ++k) {
        const double interference =
            interference_at(instance.metric(), instance.requests(), powers, members,
                            constraint_nodes[k], params.alpha, variant, pos);
        const double headroom = signal - params.beta * interference;
        if (headroom <= 0.0) return std::numeric_limits<double>::infinity();
        scale = std::max(scale, params.beta * params.noise / headroom);
      }
    }
    scale *= 1.0 + 1e-9;  // meet the strict inequality
    double class_power = 0.0;
    for (const std::size_t i : members) class_power += powers[i];
    total += scale * class_power;
  }
  return total;
}

}  // namespace oisched
