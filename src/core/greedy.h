// Greedy first-fit coloring.
//
// The straightforward O(n)-approximation the paper mentions ("there is a
// straightforward algorithm that achieves an O(n)-approximation"): process
// requests in some order and put each into the first color class that stays
// SINR-feasible, opening a new class when none does. Works with any fixed
// power assignment, and — as the non-oblivious comparator of Theorem 1 —
// with per-class *power control*, where a class accepts a request iff some
// power assignment keeps the whole class feasible (decided exactly via the
// Perron–Frobenius oracle in sinr/power_control.h).
#ifndef OISCHED_CORE_GREEDY_H
#define OISCHED_CORE_GREEDY_H

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sinr/gain_matrix.h"

namespace oisched {

enum class RequestOrder {
  as_given,
  longest_first,
  shortest_first,
};

/// Request indices of `instance` arranged in the given order (ties broken by
/// index, so orderings are deterministic).
[[nodiscard]] std::vector<std::size_t> ordered_indices(const Instance& instance,
                                                       RequestOrder order);

/// First-fit coloring under a fixed power vector. All engines produce
/// bit-for-bit identical schedules; gain_matrix precomputes the pairwise
/// gains once and answers membership tests from tables, direct re-validates
/// whole classes per test, incremental is the metric-based middle ground.
/// `storage` picks the table backend of the gain_matrix engine (results are
/// backend-independent; tiled bounds resident memory on large sparse
/// workloads) and is ignored by the other engines. `policy` picks the
/// gain-engine accumulator arithmetic (RemovePolicy::rebuild = the plain
/// sequential sums whose bit pattern the cross-engine identity gates pin;
/// exact accumulates error-free and correctly rounded — same schedules on
/// every tested workload, guaranteed-canonical accumulators); the other
/// engines ignore it.
///
/// `scan_threads` > 1 fans each request's candidate scan (the first-fit
/// sweep over open classes) across a worker pool. Workers probe disjoint
/// class subsets and the lowest-index accepting class wins, exactly the
/// class sequential first-fit commits to — schedules are bit-identical
/// for every engine (can_add is const; gated by the determinism test).
[[nodiscard]] Schedule greedy_coloring(
    const Instance& instance, std::span<const double> powers, const SinrParams& params,
    Variant variant, RequestOrder order = RequestOrder::longest_first,
    FeasibilityEngine engine = FeasibilityEngine::gain_matrix,
    GainBackend storage = GainBackend::dense,
    RemovePolicy policy = RemovePolicy::rebuild,
    std::size_t scan_threads = 1);

struct PowerControlColoring {
  Schedule schedule;
  /// Witness powers per color class, aligned with the class's members in
  /// increasing request order (as produced by color_classes()).
  std::vector<std::vector<double>> class_powers;
};

/// First-fit coloring where feasibility of a class is "exists *some* power
/// assignment" — the unrestricted comparator the paper measures oblivious
/// assignments against.
[[nodiscard]] PowerControlColoring greedy_power_control_coloring(
    const Instance& instance, const SinrParams& params, Variant variant,
    RequestOrder order = RequestOrder::longest_first);

}  // namespace oisched

#endif  // OISCHED_CORE_GREEDY_H
