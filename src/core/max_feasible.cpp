#include "core/max_feasible.h"

#include <algorithm>

#include "sinr/feasibility.h"
#include "sinr/gain_matrix.h"
#include "sinr/power_control.h"
#include "util/error.h"

namespace oisched {
namespace {

/// Branch and bound maximizing |S| over feasible S, exploiting downward
/// closure (subsets of feasible sets are feasible). The feasibility oracle
/// is parameterized so the same search serves fixed powers and power
/// control.
template <typename CanAdd, typename Commit, typename Rollback>
class SubsetSearch {
 public:
  SubsetSearch(std::size_t n, CanAdd can_add, Commit commit, Rollback rollback)
      : n_(n), can_add_(can_add), commit_(commit), rollback_(rollback) {}

  [[nodiscard]] std::vector<std::size_t> run() {
    current_.clear();
    best_.clear();
    dfs(0);
    return best_;
  }

 private:
  void dfs(std::size_t pos) {
    if (current_.size() + (n_ - pos) <= best_.size()) return;  // bound
    if (pos == n_) {
      if (current_.size() > best_.size()) best_ = current_;
      return;
    }
    // Include-first branching reaches large feasible sets early, making the
    // bound sharp when the whole instance is (nearly) one class.
    if (can_add_(current_, pos)) {
      commit_(current_, pos);
      current_.push_back(pos);
      dfs(pos + 1);
      current_.pop_back();
      rollback_(current_, pos);
    }
    dfs(pos + 1);
  }

  std::size_t n_;
  CanAdd can_add_;
  Commit commit_;
  Rollback rollback_;
  std::vector<std::size_t> current_;
  std::vector<std::size_t> best_;
};

}  // namespace

std::vector<std::size_t> greedy_max_feasible_subset(const Instance& instance,
                                                    std::span<const double> powers,
                                                    const SinrParams& params,
                                                    Variant variant, RequestOrder order) {
  const std::vector<std::size_t> idx = ordered_indices(instance, order);
  return greedy_feasible_subset(instance.metric(), instance.requests(), powers, idx, params,
                                variant);
}

std::vector<std::size_t> exact_max_feasible_subset(const Instance& instance,
                                                   std::span<const double> powers,
                                                   const SinrParams& params,
                                                   Variant variant) {
  require(instance.size() <= 20, "exact_max_feasible_subset: limited to n <= 20");
  require(powers.size() == instance.size(), "exact_max_feasible_subset: power per request");
  params.validate();
  const auto gains = instance.gains(powers, params.alpha, variant);
  const GainMatrix& t = *gains;
  const bool bidirectional = variant == Variant::bidirectional;
  const double beta = params.beta;
  const std::size_t n = instance.size();

  // Running interference sums at the constraint nodes of each request.
  std::vector<double> sum_v(n, 0.0);
  std::vector<double> sum_u(n, 0.0);

  auto feasible_with = [&](const std::vector<std::size_t>& current, std::size_t j) {
    // Members must tolerate j; j must tolerate members.
    for (const std::size_t i : current) {
      if (!(t.signal(i) > beta * (sum_v[i] + t.at_v(j, i)))) return false;
      if (bidirectional && !(t.signal(i) > beta * (sum_u[i] + t.at_u(j, i)))) {
        return false;
      }
    }
    double j_v = 0.0;
    double j_u = 0.0;
    for (const std::size_t i : current) {
      j_v += t.at_v(i, j);
      if (bidirectional) j_u += t.at_u(i, j);
    }
    if (!(t.signal(j) > beta * j_v)) return false;
    if (bidirectional && !(t.signal(j) > beta * j_u)) return false;
    return true;
  };
  auto commit = [&](const std::vector<std::size_t>& current, std::size_t j) {
    (void)current;
    for (std::size_t i = 0; i < n; ++i) {
      sum_v[i] += t.at_v(j, i);
      if (bidirectional) sum_u[i] += t.at_u(j, i);
    }
  };
  auto rollback = [&](const std::vector<std::size_t>& current, std::size_t j) {
    (void)current;
    for (std::size_t i = 0; i < n; ++i) {
      sum_v[i] -= t.at_v(j, i);
      if (bidirectional) sum_u[i] -= t.at_u(j, i);
    }
  };

  SubsetSearch search(n, feasible_with, commit, rollback);
  return search.run();
}

std::vector<std::size_t> exact_max_feasible_subset_power_control(const Instance& instance,
                                                                 const SinrParams& params,
                                                                 Variant variant) {
  require(instance.size() <= 16,
          "exact_max_feasible_subset_power_control: limited to n <= 16");
  params.validate();
  const std::size_t n = instance.size();
  auto feasible_with = [&](const std::vector<std::size_t>& current, std::size_t j) {
    std::vector<std::size_t> candidate = current;
    candidate.push_back(j);
    return power_control_feasible(instance.metric(), instance.requests(), candidate, params,
                                  variant)
        .feasible;
  };
  auto noop = [](const std::vector<std::size_t>&, std::size_t) {};
  SubsetSearch search(n, feasible_with, noop, noop);
  return search.run();
}

}  // namespace oisched
