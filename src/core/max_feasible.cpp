#include "core/max_feasible.h"

#include <algorithm>
#include <limits>

#include "sinr/feasibility.h"
#include "sinr/power_control.h"
#include "util/error.h"

namespace oisched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pairwise interference tables enabling O(k) incremental feasibility with
/// undo — the engine of the exact branch-and-bound searches.
class PairwiseTables {
 public:
  PairwiseTables(const Instance& instance, std::span<const double> powers,
                 const SinrParams& params, Variant variant)
      : n_(instance.size()), variant_(variant), beta_(params.beta) {
    signal_.resize(n_);
    at_v_.assign(n_ * n_, 0.0);
    if (variant == Variant::bidirectional) at_u_.assign(n_ * n_, 0.0);
    const MetricSpace& metric = instance.metric();
    for (std::size_t i = 0; i < n_; ++i) {
      signal_[i] = powers[i] / instance.loss(i, params.alpha);
      const Request& ri = instance.request(i);
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == i) continue;
        const Request& rj = instance.request(j);
        at_v_[j * n_ + i] =
            contribution(metric, rj, powers[j], ri.v, params.alpha, variant);
        if (variant == Variant::bidirectional) {
          at_u_[j * n_ + i] =
              contribution(metric, rj, powers[j], ri.u, params.alpha, variant);
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double signal(std::size_t i) const { return signal_[i]; }
  [[nodiscard]] double at_v(std::size_t j, std::size_t i) const { return at_v_[j * n_ + i]; }
  [[nodiscard]] double at_u(std::size_t j, std::size_t i) const {
    return variant_ == Variant::bidirectional ? at_u_[j * n_ + i] : 0.0;
  }
  [[nodiscard]] bool bidirectional() const noexcept {
    return variant_ == Variant::bidirectional;
  }
  [[nodiscard]] double beta() const noexcept { return beta_; }

 private:
  static double contribution(const MetricSpace& metric, const Request& r, double power,
                             NodeId w, double alpha, Variant variant) {
    const double l = variant == Variant::directed
                         ? path_loss(metric.distance(r.u, w), alpha)
                         : min_endpoint_loss(metric, r, w, alpha);
    return l == 0.0 ? kInf : power / l;
  }

  std::size_t n_;
  Variant variant_;
  double beta_;
  std::vector<double> signal_;
  std::vector<double> at_v_;
  std::vector<double> at_u_;
};

/// Branch and bound maximizing |S| over feasible S, exploiting downward
/// closure (subsets of feasible sets are feasible). The feasibility oracle
/// is parameterized so the same search serves fixed powers and power
/// control.
template <typename CanAdd, typename Commit, typename Rollback>
class SubsetSearch {
 public:
  SubsetSearch(std::size_t n, CanAdd can_add, Commit commit, Rollback rollback)
      : n_(n), can_add_(can_add), commit_(commit), rollback_(rollback) {}

  [[nodiscard]] std::vector<std::size_t> run() {
    current_.clear();
    best_.clear();
    dfs(0);
    return best_;
  }

 private:
  void dfs(std::size_t pos) {
    if (current_.size() + (n_ - pos) <= best_.size()) return;  // bound
    if (pos == n_) {
      if (current_.size() > best_.size()) best_ = current_;
      return;
    }
    // Include-first branching reaches large feasible sets early, making the
    // bound sharp when the whole instance is (nearly) one class.
    if (can_add_(current_, pos)) {
      commit_(current_, pos);
      current_.push_back(pos);
      dfs(pos + 1);
      current_.pop_back();
      rollback_(current_, pos);
    }
    dfs(pos + 1);
  }

  std::size_t n_;
  CanAdd can_add_;
  Commit commit_;
  Rollback rollback_;
  std::vector<std::size_t> current_;
  std::vector<std::size_t> best_;
};

}  // namespace

std::vector<std::size_t> greedy_max_feasible_subset(const Instance& instance,
                                                    std::span<const double> powers,
                                                    const SinrParams& params,
                                                    Variant variant, RequestOrder order) {
  const std::vector<std::size_t> idx = ordered_indices(instance, order);
  return greedy_feasible_subset(instance.metric(), instance.requests(), powers, idx, params,
                                variant);
}

std::vector<std::size_t> exact_max_feasible_subset(const Instance& instance,
                                                   std::span<const double> powers,
                                                   const SinrParams& params,
                                                   Variant variant) {
  require(instance.size() <= 20, "exact_max_feasible_subset: limited to n <= 20");
  require(powers.size() == instance.size(), "exact_max_feasible_subset: power per request");
  params.validate();
  const PairwiseTables t(instance, powers, params, variant);
  const std::size_t n = instance.size();

  // Running interference sums at the constraint nodes of each request.
  std::vector<double> sum_v(n, 0.0);
  std::vector<double> sum_u(n, 0.0);

  auto feasible_with = [&](const std::vector<std::size_t>& current, std::size_t j) {
    // Members must tolerate j; j must tolerate members.
    for (const std::size_t i : current) {
      if (!(t.signal(i) > t.beta() * (sum_v[i] + t.at_v(j, i)))) return false;
      if (t.bidirectional() && !(t.signal(i) > t.beta() * (sum_u[i] + t.at_u(j, i)))) {
        return false;
      }
    }
    double j_v = 0.0;
    double j_u = 0.0;
    for (const std::size_t i : current) {
      j_v += t.at_v(i, j);
      if (t.bidirectional()) j_u += t.at_u(i, j);
    }
    if (!(t.signal(j) > t.beta() * j_v)) return false;
    if (t.bidirectional() && !(t.signal(j) > t.beta() * j_u)) return false;
    return true;
  };
  auto commit = [&](const std::vector<std::size_t>& current, std::size_t j) {
    (void)current;
    for (std::size_t i = 0; i < n; ++i) {
      sum_v[i] += t.at_v(j, i);
      if (t.bidirectional()) sum_u[i] += t.at_u(j, i);
    }
  };
  auto rollback = [&](const std::vector<std::size_t>& current, std::size_t j) {
    (void)current;
    for (std::size_t i = 0; i < n; ++i) {
      sum_v[i] -= t.at_v(j, i);
      if (t.bidirectional()) sum_u[i] -= t.at_u(j, i);
    }
  };

  SubsetSearch search(n, feasible_with, commit, rollback);
  return search.run();
}

std::vector<std::size_t> exact_max_feasible_subset_power_control(const Instance& instance,
                                                                 const SinrParams& params,
                                                                 Variant variant) {
  require(instance.size() <= 16,
          "exact_max_feasible_subset_power_control: limited to n <= 16");
  params.validate();
  const std::size_t n = instance.size();
  auto feasible_with = [&](const std::vector<std::size_t>& current, std::size_t j) {
    std::vector<std::size_t> candidate = current;
    candidate.push_back(j);
    return power_control_feasible(instance.metric(), instance.requests(), candidate, params,
                                  variant)
        .feasible;
  };
  auto noop = [](const std::vector<std::size_t>&, std::size_t) {};
  SubsetSearch search(n, feasible_with, noop, noop);
  return search.run();
}

}  // namespace oisched
