// Plain-text serialization of instances and schedules.
//
// A small, stable, line-oriented format so experiments can be scripted,
// shared and replayed without recompiling:
//
//   # oisched instance v1
//   point <x> <y> <z>
//   request <u> <v>
//
//   # oisched schedule v1
//   colors <k>
//   color <request-index> <color>
//
// Lines starting with '#' and blank lines are ignored.
#ifndef OISCHED_CORE_IO_H
#define OISCHED_CORE_IO_H

#include <iosfwd>
#include <string>

#include "core/instance.h"
#include "core/schedule.h"
#include "util/expected.h"

namespace oisched {

/// Thrown on malformed input text.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

void write_instance(std::ostream& out, const Instance& instance);
[[nodiscard]] Instance read_instance(std::istream& in);

void write_schedule(std::ostream& out, const Schedule& schedule);
[[nodiscard]] Schedule read_schedule(std::istream& in);

/// Convenience file wrappers; throw ParseError / PreconditionError on
/// failure.
void save_instance(const std::string& path, const Instance& instance);
[[nodiscard]] Instance load_instance(const std::string& path);
void save_schedule(const std::string& path, const Schedule& schedule);
[[nodiscard]] Schedule load_schedule(const std::string& path);

/// Non-throwing variants for the boundary layers (CLI, service): a missing
/// file or malformed document comes back as a structured message naming
/// the path, instead of an exception the caller has to translate.
[[nodiscard]] Expected<Instance> try_load_instance(const std::string& path);
[[nodiscard]] Expected<Schedule> try_load_schedule(const std::string& path);

}  // namespace oisched

#endif  // OISCHED_CORE_IO_H
