#include "core/greedy.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "sinr/power_control.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace oisched {
namespace {

/// The from-scratch engine: a membership test re-validates the whole class
/// plus the candidate through check_feasible, exactly as an external caller
/// of the public API would.
class RecheckClass {
 public:
  RecheckClass(const MetricSpace& metric, std::span<const Request> requests,
               std::span<const double> powers, const SinrParams& params, Variant variant)
      : metric_(metric),
        requests_(requests),
        powers_(powers),
        params_(params),
        variant_(variant) {}

  [[nodiscard]] bool can_add(std::size_t request_index) const {
    std::vector<std::size_t> with(members_);
    with.push_back(request_index);
    return check_feasible(metric_, requests_, powers_, with, params_, variant_).feasible;
  }
  void add(std::size_t request_index) { members_.push_back(request_index); }

 private:
  const MetricSpace& metric_;
  std::span<const Request> requests_;
  std::span<const double> powers_;
  SinrParams params_;
  Variant variant_;
  std::vector<std::size_t> members_;
};

/// First-fit over any class representation exposing can_add/add.
///
/// With scan_threads > 1, each round's candidate scan fans across a worker
/// pool: worker t probes classes t, t + T, t + 2T, ... in ascending order
/// and stops at its first acceptor, so the minimum over workers is the
/// lowest-index accepting class — the one sequential first-fit commits to.
/// can_add is const on every engine (the lazy backends materialize tiles
/// behind their own synchronization), so probing extra classes changes no
/// state and the schedules stay bit-identical.
template <typename ClassT, typename Factory>
Schedule first_fit_coloring(const Instance& instance, RequestOrder order,
                            const Factory& make_class, std::size_t scan_threads) {
  Schedule schedule;
  schedule.color_of.assign(instance.size(), -1);
  std::vector<ClassT> classes;
  std::optional<ThreadPool> pool;
  if (scan_threads > 1) pool.emplace(scan_threads);
  std::vector<std::size_t> local_first;
  for (const std::size_t i : ordered_indices(instance, order)) {
    std::size_t chosen = classes.size();
    if (pool.has_value() && classes.size() > 1) {
      const std::size_t workers = std::min(scan_threads, classes.size());
      local_first.assign(workers, classes.size());
      for (std::size_t t = 0; t < workers; ++t) {
        pool->submit([&, t, workers] {
          for (std::size_t c = t; c < classes.size(); c += workers) {
            if (classes[c].can_add(i)) {
              local_first[t] = c;
              return;
            }
          }
        });
      }
      pool->wait_idle();
      chosen = *std::min_element(local_first.begin(), local_first.end());
    } else {
      for (std::size_t c = 0; c < classes.size(); ++c) {
        if (classes[c].can_add(i)) {
          chosen = c;
          break;
        }
      }
    }
    if (chosen == classes.size()) classes.push_back(make_class());
    classes[chosen].add(i);
    schedule.color_of[i] = static_cast<int>(chosen);
  }
  schedule.num_colors = static_cast<int>(classes.size());
  return schedule;
}

}  // namespace

std::vector<std::size_t> ordered_indices(const Instance& instance, RequestOrder order) {
  std::vector<std::size_t> idx = instance.all_indices();
  switch (order) {
    case RequestOrder::as_given:
      break;
    case RequestOrder::longest_first:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return instance.length(a) > instance.length(b);
      });
      break;
    case RequestOrder::shortest_first:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return instance.length(a) < instance.length(b);
      });
      break;
  }
  return idx;
}

Schedule greedy_coloring(const Instance& instance, std::span<const double> powers,
                         const SinrParams& params, Variant variant, RequestOrder order,
                         FeasibilityEngine engine, GainBackend storage,
                         RemovePolicy policy, std::size_t scan_threads) {
  require(powers.size() == instance.size(), "greedy_coloring: one power per request");
  switch (engine) {
    case FeasibilityEngine::direct:
      return first_fit_coloring<RecheckClass>(
          instance, order,
          [&] {
            return RecheckClass(instance.metric(), instance.requests(), powers, params,
                                variant);
          },
          scan_threads);
    case FeasibilityEngine::incremental:
      return first_fit_coloring<IncrementalClass>(
          instance, order,
          [&] {
            return IncrementalClass(instance.metric(), instance.requests(), powers,
                                    params, variant);
          },
          scan_threads);
    case FeasibilityEngine::gain_matrix:
      break;
  }
  const auto gains =
      instance.gains(powers, params.alpha, variant, /*with_sender_gains=*/false, storage);
  return first_fit_coloring<IncrementalGainClass>(
      instance, order, [&] { return IncrementalGainClass(*gains, params, policy); },
      scan_threads);
}

PowerControlColoring greedy_power_control_coloring(const Instance& instance,
                                                   const SinrParams& params,
                                                   Variant variant, RequestOrder order) {
  PowerControlColoring result;
  result.schedule.color_of.assign(instance.size(), -1);

  std::vector<std::vector<std::size_t>> classes;
  for (const std::size_t i : ordered_indices(instance, order)) {
    bool placed = false;
    for (auto& members : classes) {
      members.push_back(i);
      if (power_control_feasible(instance.metric(), instance.requests(), members, params,
                                 variant)
              .feasible) {
        result.schedule.color_of[i] = static_cast<int>(&members - classes.data());
        placed = true;
        break;
      }
      members.pop_back();
    }
    if (!placed) {
      classes.push_back({i});
      result.schedule.color_of[i] = static_cast<int>(classes.size() - 1);
    }
  }
  result.schedule.num_colors = static_cast<int>(classes.size());

  // Recompute witness powers per final class, ordered as color_classes()
  // reports members (increasing request index).
  for (auto& members : classes) std::sort(members.begin(), members.end());
  result.class_powers.reserve(classes.size());
  for (const auto& members : classes) {
    PowerControlResult pc = power_control_feasible(instance.metric(), instance.requests(),
                                                   members, params, variant);
    ensure(pc.feasible, "greedy_power_control_coloring: final class must be feasible");
    if (pc.witness_powers.empty()) pc.witness_powers.assign(members.size(), 1.0);
    result.class_powers.push_back(std::move(pc.witness_powers));
  }
  return result;
}

}  // namespace oisched
