// Centroid (star) decomposition of tree metrics — the Lemma-9 machinery.
//
// Section 3.4: pick a centroid c whose removal splits the tree into
// components of at most half the size; the star metric "distances to c"
// dominates the tree metric, so star-level selection (Lemma 5) applies;
// recurse into the components. Every pair of nodes is separated at exactly
// one recursion level, where their star distance equals their tree distance
// — the accounting behind Lemma 9's "correct distance in at least one
// recursion".
#ifndef OISCHED_EMBED_STAR_DECOMPOSITION_H
#define OISCHED_EMBED_STAR_DECOMPOSITION_H

#include <vector>

#include "metric/tree_metric.h"

namespace oisched {

/// One star of one recursion level: the participants of a current component
/// together with their tree distance to the component's centroid.
struct StarPiece {
  NodeId center = 0;
  std::vector<NodeId> members;   // tree nodes (excluding the center)
  std::vector<double> radii;     // tree distance of members[i] to center
};

/// All stars of one recursion depth (one per component at that depth).
struct DecompositionLevel {
  std::vector<StarPiece> stars;
};

/// Full centroid decomposition of `tree`, restricted to the nodes in
/// `participants` (other tree nodes still shape the components but carry no
/// requests). Depth is O(log |tree|).
[[nodiscard]] std::vector<DecompositionLevel> centroid_star_decomposition(
    const TreeMetric& tree, const std::vector<NodeId>& participants);

}  // namespace oisched

#endif  // OISCHED_EMBED_STAR_DECOMPOSITION_H
