// Random tree embeddings (Lemma 6 / Section 3.3).
//
// The paper reduces general metrics to trees with a family of r = O(log n)
// edge-weighted trees such that (1) every tree dominates the metric and
// (2) every node has a "core" membership — a 9/10 fraction of trees in
// which all of its distances are stretched by only O(log n).
//
// We realize the family with Fakcharoenphol–Rao–Talwar (FRT) random
// hierarchically-separated trees: a random permutation plus a random radius
// scale produce a laminar partition whose cluster tree dominates the metric
// and stretches each pair by O(log n) in expectation. Cores are computed
// *exactly* per sampled tree (max stretch over all partners of a node), so
// the realized coverage and stretch are measured rather than assumed; the
// benchmarks report them against the lemma's targets. See DESIGN.md
// "Substitutions".
#ifndef OISCHED_EMBED_FRT_H
#define OISCHED_EMBED_FRT_H

#include <memory>
#include <vector>

#include "metric/metric_space.h"
#include "metric/tree_metric.h"
#include "util/rng.h"

namespace oisched {

/// One sampled tree: `tree` has the original points as nodes 0..n-1 plus
/// internal cluster nodes; distances between original points dominate the
/// base metric.
struct SampledTree {
  std::shared_ptr<const TreeMetric> tree;
  std::size_t num_points = 0;
  /// stretch[v] = max over partners u of tree(u,v) / d(u,v).
  std::vector<double> node_stretch;
};

/// Samples one FRT tree over `metric`.
[[nodiscard]] SampledTree sample_frt_tree(const MetricSpace& metric, Rng& rng);

struct FrtFamily {
  std::vector<SampledTree> trees;
  /// core_of[t] — nodes of tree t whose stretch is within the family's
  /// core threshold.
  std::vector<std::vector<NodeId>> core_of;
  double core_threshold = 0.0;
};

struct FrtFamilyOptions {
  /// Number of trees; <= 0 means ceil(4 * log2(n)) + 1.
  int num_trees = 0;
  /// Fraction of trees each node should be core in (Lemma 6 uses 9/10).
  double target_coverage = 0.9;
};

/// Samples a family and computes the smallest stretch threshold for which
/// the average node is core in `target_coverage` of the trees.
[[nodiscard]] FrtFamily sample_frt_family(const MetricSpace& metric, Rng& rng,
                                          const FrtFamilyOptions& options = {});

/// Fraction of nodes that are core in at least `coverage` of the trees.
[[nodiscard]] double family_core_coverage(const FrtFamily& family, std::size_t num_points,
                                          double coverage);

}  // namespace oisched

#endif  // OISCHED_EMBED_FRT_H
