// Gain rescaling (Propositions 3 and 4, Section 3.1) — constructive.
//
// Prop 3: a set feasible at gain beta contains a beta/(8 beta') fraction
// feasible at a stricter gain beta'. Prop 4: the whole set can be colored
// with O(beta'/beta * log n) colors at gain beta'. The paper omits the
// proofs; we implement the natural constructive versions (greedy extraction
// and repeated extraction, respectively) — see DESIGN.md "Substitutions".
#ifndef OISCHED_EMBED_GAIN_SCALING_H
#define OISCHED_EMBED_GAIN_SCALING_H

#include <span>
#include <vector>

#include "sinr/feasibility.h"
#include "sinr/node_loss.h"

namespace oisched {

/// Prop-3 stand-in for node-loss instances: scans `candidates` and keeps
/// each participant iff the kept set stays beta_strict-feasible.
[[nodiscard]] std::vector<std::size_t> node_loss_rescale_subset(
    const NodeLossInstance& instance, std::span<const double> powers,
    std::span<const std::size_t> candidates, double alpha, double beta_strict);

/// Prop-4 stand-in for requests: repeatedly extracts greedy feasible
/// subsets at the stricter gain until all candidates are colored. Returns
/// the color classes.
[[nodiscard]] std::vector<std::vector<std::size_t>> gain_rescale_coloring(
    const MetricSpace& metric, std::span<const Request> requests,
    std::span<const double> powers, std::span<const std::size_t> candidates,
    const SinrParams& strict_params, Variant variant);

}  // namespace oisched

#endif  // OISCHED_EMBED_GAIN_SCALING_H
