// Star-level subset selection under the square-root assignment (Lemma 5).
//
// Given node-loss requests placed on a star (radii delta_i, loss parameters
// l_i), Lemma 5 guarantees that if *some* power assignment makes the whole
// star beta'-feasible, then all but an O((beta/beta')^{2/3}) fraction of the
// nodes are beta-feasible under the square-root assignment. Its proof is a
// constructive case analysis which we execute directly:
//
//   1. decay d_i = delta_i^alpha, loss ratio a_i = l_i / d_i; loss
//      parameters above the large-loss threshold 2^{alpha+1}/beta' are
//      clamped (Section 4.4's hypothetical reduction),
//   2. Claim 12: within each decay class D_j = {2^{j-1} < d <= 2^j}, nodes
//      whose (clamped) loss parameter exceeds 2^{alpha+j+2}/(eps*beta'*k_j)
//      are dropped — at most an eps fraction when a witness exists,
//   3. nodes whose interference from the remaining candidates (square-root
//      powers, clamped losses) exceeds their budget 1/(beta*sqrt(l')) are
//      dropped (the Lemma-11 selection, computed exactly rather than via
//      the analytic class bounds),
//   4. a final exact pass on the *original* losses removes the few nodes
//      the large/small-loss interplay (Lemmas 13/14) accounts for, by
//      repeatedly evicting the most harmful offender until the remainder is
//      beta-feasible. The output is therefore always beta-feasible under
//      the square-root assignment, regardless of whether a witness existed.
#ifndef OISCHED_EMBED_STAR_SCHEDULING_H
#define OISCHED_EMBED_STAR_SCHEDULING_H

#include <cstddef>
#include <span>
#include <vector>

namespace oisched {

struct StarSelectionOptions {
  /// The gain beta' the witness assignment is assumed to achieve; defaults
  /// to beta when <= 0.
  double beta_witness = 0.0;
  /// The Markov fraction eps of Claim 12; <= 0 means the Lemma-5 choice
  /// (beta/beta')^{2/3}, clamped into [0.05, 0.5].
  double epsilon = 0.0;
};

struct StarSelectionReport {
  std::vector<std::size_t> selected;
  std::size_t dropped_large_loss_clamp = 0;  // nodes whose loss was clamped
  std::size_t dropped_claim12 = 0;
  std::size_t dropped_interference = 0;
  std::size_t dropped_final = 0;
};

/// Runs the Lemma-5 selection on a star. `radii[i]` is the distance of node
/// i to the star center, `losses[i]` its loss parameter. The returned
/// subset is beta-feasible under p_i = sqrt(losses[i]) in the star metric.
[[nodiscard]] StarSelectionReport select_star_subset(std::span<const double> radii,
                                                     std::span<const double> losses,
                                                     double alpha, double beta,
                                                     const StarSelectionOptions& options = {});

/// Exact feasibility check used by tests: is `subset` beta-feasible on the
/// star under square-root powers (original losses)?
[[nodiscard]] bool star_subset_feasible(std::span<const double> radii,
                                        std::span<const double> losses,
                                        std::span<const std::size_t> subset, double alpha,
                                        double beta);

}  // namespace oisched

#endif  // OISCHED_EMBED_STAR_SCHEDULING_H
