#include "embed/pipeline.h"

#include <algorithm>
#include <map>
#include <memory>

#include "core/power_assignment.h"
#include "embed/frt.h"
#include "embed/star_decomposition.h"
#include "embed/star_scheduling.h"
#include "metric/matrix_metric.h"
#include "sinr/feasibility.h"
#include "util/error.h"
#include "util/rng.h"

namespace oisched {
namespace {

/// A node-loss participant of the current round: one endpoint of a pair.
struct Participant {
  std::size_t pair = 0;    // index into the round's uncolored list
  NodeId local_node = 0;   // point id in the round-local metric
  double loss = 0.0;       // the pair's link loss
};

struct RoundInput {
  std::shared_ptr<MatrixMetric> metric;  // round-local metric over points
  std::vector<Participant> participants;
  std::size_t num_points = 0;
};

RoundInput build_round_input(const Instance& instance,
                             std::span<const std::size_t> uncolored, double alpha) {
  RoundInput input;
  std::map<NodeId, NodeId> local_of;
  std::vector<NodeId> globals;
  auto localize = [&](NodeId global) {
    const auto [it, inserted] = local_of.try_emplace(global, globals.size());
    if (inserted) globals.push_back(global);
    return it->second;
  };
  for (std::size_t k = 0; k < uncolored.size(); ++k) {
    const Request& r = instance.request(uncolored[k]);
    const double loss = instance.loss(uncolored[k], alpha);
    input.participants.push_back(Participant{k, localize(r.u), loss});
    input.participants.push_back(Participant{k, localize(r.v), loss});
  }
  const std::size_t m = globals.size();
  std::vector<double> d(m * m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const double dist = instance.metric().distance(globals[a], globals[b]);
      d[a * m + b] = dist;
      d[b * m + a] = dist;
    }
  }
  input.metric = std::make_shared<MatrixMetric>(m, std::move(d));
  input.num_points = m;
  return input;
}

/// Outcome of running one tree through the star machinery.
struct TreeOutcome {
  std::vector<char> alive;            // per participant
  std::size_t core_participants = 0;
  std::size_t levels = 0;
  std::vector<std::size_t> complete_pairs;  // round-local pair ids
};

TreeOutcome run_tree(const SampledTree& tree, double core_threshold,
                     const RoundInput& input, const SinrParams& params) {
  TreeOutcome outcome;
  const std::size_t p = input.participants.size();
  outcome.alive.assign(p, 0);

  // Lemma 6: restrict to the tree's core.
  std::vector<NodeId> participant_nodes;
  for (std::size_t e = 0; e < p; ++e) {
    const NodeId node = input.participants[e].local_node;
    if (tree.node_stretch[node] <= core_threshold) {
      outcome.alive[e] = 1;
      ++outcome.core_participants;
      participant_nodes.push_back(node);
    }
  }
  std::sort(participant_nodes.begin(), participant_nodes.end());
  participant_nodes.erase(
      std::unique(participant_nodes.begin(), participant_nodes.end()),
      participant_nodes.end());

  // Lemma 9: centroid decomposition into stars.
  const auto levels = centroid_star_decomposition(*tree.tree, participant_nodes);
  outcome.levels = levels.size();
  // Per-star interference adds up over the levels (Lemma 9's accounting),
  // so each level is run at gain beta * L.
  const double beta_level =
      params.beta * static_cast<double>(std::max<std::size_t>(1, levels.size()));

  // Entries per local node (two pairs may share a point).
  std::multimap<NodeId, std::size_t> entries_at;
  for (std::size_t e = 0; e < p; ++e) {
    entries_at.emplace(input.participants[e].local_node, e);
  }

  for (const DecompositionLevel& level : levels) {
    for (const StarPiece& star : level.stars) {
      std::vector<std::size_t> entry_ids;
      std::vector<double> radii;
      std::vector<double> losses;
      for (std::size_t m = 0; m < star.members.size(); ++m) {
        auto [lo, hi] = entries_at.equal_range(star.members[m]);
        for (auto it = lo; it != hi; ++it) {
          const std::size_t e = it->second;
          if (!outcome.alive[e]) continue;
          entry_ids.push_back(e);
          radii.push_back(star.radii[m]);
          losses.push_back(input.participants[e].loss);
        }
      }
      if (entry_ids.size() <= 1) continue;
      const StarSelectionReport report =
          select_star_subset(radii, losses, params.alpha, beta_level);
      std::vector<char> selected(entry_ids.size(), 0);
      for (const std::size_t k : report.selected) selected[k] = 1;
      for (std::size_t k = 0; k < entry_ids.size(); ++k) {
        if (!selected[k]) outcome.alive[entry_ids[k]] = 0;
      }
    }
  }

  // Section 3.2, back-direction: keep pairs whose both endpoints survived.
  std::vector<int> endpoint_count;
  for (std::size_t e = 0; e < p; ++e) {
    const std::size_t pair = input.participants[e].pair;
    if (pair >= endpoint_count.size()) {
      endpoint_count.resize(pair + 1, 0);
    }
    if (outcome.alive[e]) ++endpoint_count[pair];
  }
  for (std::size_t k = 0; k < endpoint_count.size(); ++k) {
    if (endpoint_count[k] == 2) outcome.complete_pairs.push_back(k);
  }
  return outcome;
}

}  // namespace

PipelineResult theorem2_schedule(const Instance& instance, const SinrParams& params,
                                 const PipelineOptions& options) {
  params.validate();
  PipelineResult result;
  result.powers = SqrtPower{}.assign(instance, params.alpha);
  result.schedule.color_of.assign(instance.size(), -1);

  Rng rng(options.seed);
  std::vector<std::size_t> uncolored = instance.all_indices();
  int color = 0;
  while (!uncolored.empty()) {
    PipelineRoundDiagnostics diag;
    diag.uncolored = uncolored.size();

    const RoundInput input = build_round_input(instance, uncolored, params.alpha);
    diag.participants = input.participants.size();

    FrtFamilyOptions family_options;
    family_options.num_trees = options.num_trees;
    family_options.target_coverage = options.core_coverage;
    const FrtFamily family = sample_frt_family(*input.metric, rng, family_options);
    diag.core_threshold = family.core_threshold;

    // Prop 7, constructively: take the tree retaining the most pairs.
    TreeOutcome best;
    std::size_t best_tree = 0;
    for (std::size_t t = 0; t < family.trees.size(); ++t) {
      TreeOutcome outcome =
          run_tree(family.trees[t], family.core_threshold, input, params);
      if (outcome.complete_pairs.size() > best.complete_pairs.size() || t == 0) {
        best = std::move(outcome);
        best_tree = t;
      }
    }
    diag.tree_index = best_tree;
    diag.levels = best.levels;
    diag.core_participants = best.core_participants;
    diag.star_survivors = static_cast<std::size_t>(
        std::count(best.alive.begin(), best.alive.end(), char{1}));
    diag.pairs_complete = best.complete_pairs.size();

    // Lemma 8 + Prop 3: the tree-side selection transfers to the original
    // metric only up to the stretch; extract an exactly beta-feasible
    // subset there (longest first).
    std::vector<std::size_t> candidates;
    candidates.reserve(best.complete_pairs.size());
    for (const std::size_t k : best.complete_pairs) candidates.push_back(uncolored[k]);
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      return instance.length(a) > instance.length(b);
    });
    std::vector<std::size_t> chosen =
        greedy_feasible_subset(instance.metric(), instance.requests(), result.powers,
                               candidates, params, Variant::bidirectional);
    if (chosen.empty()) {
      // Guaranteed progress: a singleton is feasible in the noise-free model.
      std::size_t longest = uncolored.front();
      for (const std::size_t j : uncolored) {
        if (instance.length(j) > instance.length(longest)) longest = j;
      }
      chosen.push_back(longest);
    }
    diag.colored = chosen.size();

    std::vector<char> taken(instance.size(), 0);
    for (const std::size_t j : chosen) {
      result.schedule.color_of[j] = color;
      taken[j] = 1;
    }
    std::vector<std::size_t> rest;
    rest.reserve(uncolored.size() - chosen.size());
    for (const std::size_t j : uncolored) {
      if (!taken[j]) rest.push_back(j);
    }
    uncolored = std::move(rest);
    ++color;
    result.rounds.push_back(diag);
  }
  result.schedule.num_colors = color;
  return result;
}

}  // namespace oisched
