// The Theorem-2 pipeline, end to end (Section 3.5), made constructive.
//
// The paper's existence proof for the polylog coloring under the
// square-root assignment chains five devices:
//
//   pairs -> node-loss split (3.2)
//   general metric -> tree family, pick a good tree (Lemma 6 / Prop 7)
//   tree -> stars by centroid decomposition (Lemma 9)
//   star selection under sqrt powers (Lemma 5 / Section 4)
//   back to the original metric (Lemma 8) + gain rescaling (Prop 3)
//
// This module executes that chain as an actual scheduling algorithm: each
// round it selects a set of requests surviving every stage, colors them,
// and repeats. It exists to *demonstrate* the proof machinery and to
// cross-check the practical algorithm (core/sqrt_coloring.h); it reports
// per-round diagnostics so benchmarks can attribute losses to stages.
#ifndef OISCHED_EMBED_PIPELINE_H
#define OISCHED_EMBED_PIPELINE_H

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"

namespace oisched {

struct PipelineOptions {
  std::uint64_t seed = 1;
  /// FRT trees per round; 0 means auto (ceil(4 log2 n) + 1).
  int num_trees = 0;
  /// Lemma-6 core coverage target.
  double core_coverage = 0.9;
};

struct PipelineRoundDiagnostics {
  std::size_t uncolored = 0;       // before the round
  std::size_t participants = 0;    // node-loss entries (2 per pair)
  std::size_t tree_index = 0;      // index of the chosen tree
  double core_threshold = 0.0;     // realized Lemma-6 stretch threshold
  std::size_t levels = 0;          // centroid recursion depth
  std::size_t core_participants = 0;
  std::size_t star_survivors = 0;  // after all star selections
  std::size_t pairs_complete = 0;  // both endpoints survived
  std::size_t colored = 0;         // after final thinning
};

struct PipelineResult {
  Schedule schedule;
  std::vector<double> powers;  // square-root powers
  std::vector<PipelineRoundDiagnostics> rounds;
};

/// Runs the Theorem-2 pipeline on a bidirectional instance.
[[nodiscard]] PipelineResult theorem2_schedule(const Instance& instance,
                                               const SinrParams& params,
                                               const PipelineOptions& options = {});

}  // namespace oisched

#endif  // OISCHED_EMBED_PIPELINE_H
