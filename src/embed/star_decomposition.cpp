#include "embed/star_decomposition.h"

#include <algorithm>

#include "util/error.h"

namespace oisched {
namespace {

/// A component of the current recursion depth: a connected set of tree
/// nodes, tracked via a membership stamp to avoid repeated allocation.
struct Component {
  std::vector<NodeId> nodes;
};

/// Finds the centroid of `component` (membership given by stamp vector):
/// removal leaves parts of size at most |component| / 2.
NodeId find_centroid(const TreeMetric& tree, const Component& component,
                     const std::vector<int>& stamp, int current_stamp) {
  const std::size_t total = component.nodes.size();
  if (total == 1) return component.nodes.front();

  // Iterative DFS from component.nodes.front() computing subtree sizes.
  const NodeId root = component.nodes.front();
  std::vector<NodeId> order;
  order.reserve(total);
  std::vector<NodeId> parent_of(tree.size(), root);
  std::vector<std::size_t> subtree(tree.size(), 1);
  std::vector<NodeId> stack{root};
  std::vector<char> seen(tree.size(), 0);
  seen[root] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (const NodeId w : tree.adjacency()[v]) {
      if (seen[w] || stamp[w] != current_stamp) continue;
      seen[w] = 1;
      parent_of[w] = v;
      stack.push_back(w);
    }
  }
  ensure(order.size() == total, "find_centroid: component must be connected");
  for (std::size_t k = order.size(); k-- > 1;) {
    subtree[parent_of[order[k]]] += subtree[order[k]];
  }

  NodeId best = root;
  std::size_t best_worst = total;
  for (const NodeId v : order) {
    std::size_t worst = total - subtree[v];
    for (const NodeId w : tree.adjacency()[v]) {
      if (stamp[w] != current_stamp || w == parent_of[v]) continue;
      worst = std::max(worst, subtree[w]);
    }
    if (worst < best_worst) {
      best_worst = worst;
      best = v;
    }
  }
  ensure(2 * best_worst <= total + 1, "find_centroid: centroid property violated");
  return best;
}

}  // namespace

std::vector<DecompositionLevel> centroid_star_decomposition(
    const TreeMetric& tree, const std::vector<NodeId>& participants) {
  std::vector<char> is_participant(tree.size(), 0);
  for (const NodeId v : participants) {
    require(v < tree.size(), "centroid_star_decomposition: participant out of range");
    is_participant[v] = 1;
  }

  std::vector<DecompositionLevel> levels;
  std::vector<int> stamp(tree.size(), -1);
  std::vector<int> visit(tree.size(), -1);
  int next_stamp = 0;

  std::vector<Component> current;
  {
    Component all;
    all.nodes.reserve(tree.size());
    for (NodeId v = 0; v < tree.size(); ++v) all.nodes.push_back(v);
    current.push_back(std::move(all));
  }

  while (!current.empty()) {
    DecompositionLevel level;
    std::vector<Component> next;
    for (const Component& component : current) {
      if (component.nodes.size() <= 1) continue;
      const int my_stamp = next_stamp++;
      for (const NodeId v : component.nodes) stamp[v] = my_stamp;
      const NodeId centroid = find_centroid(tree, component, stamp, my_stamp);

      StarPiece star;
      star.center = centroid;
      for (const NodeId v : component.nodes) {
        if (!is_participant[v]) continue;
        // A participant centroid joins its own star at radius 0 — this is
        // its only appearance, since the recursion removes the centroid.
        star.members.push_back(v);
        star.radii.push_back(v == centroid ? 0.0 : tree.distance(v, centroid));
      }
      if (!star.members.empty()) level.stars.push_back(std::move(star));

      // Components of component \ {centroid}: DFS from each unvisited
      // neighbor of the centroid (visit stamps avoid per-component
      // allocation).
      visit[centroid] = my_stamp;
      for (const NodeId start : tree.adjacency()[centroid]) {
        if (stamp[start] != my_stamp || visit[start] == my_stamp) continue;
        Component child;
        std::vector<NodeId> stack{start};
        visit[start] = my_stamp;
        while (!stack.empty()) {
          const NodeId v = stack.back();
          stack.pop_back();
          child.nodes.push_back(v);
          for (const NodeId w : tree.adjacency()[v]) {
            if (stamp[w] != my_stamp || visit[w] == my_stamp) continue;
            visit[w] = my_stamp;
            stack.push_back(w);
          }
        }
        next.push_back(std::move(child));
      }
    }
    if (!level.stars.empty()) levels.push_back(std::move(level));
    current = std::move(next);
  }
  return levels;
}

}  // namespace oisched
