#include "embed/frt.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/error.h"

namespace oisched {
namespace {

struct PendingCluster {
  std::vector<NodeId> members;
  int level = 0;          // radius scale 2^level applies when splitting
  NodeId tree_node = 0;   // id of this cluster in the output tree
};

}  // namespace

SampledTree sample_frt_tree(const MetricSpace& metric, Rng& rng) {
  const std::size_t n = metric.size();
  require(n > 0, "sample_frt_tree: empty metric");

  SampledTree out;
  out.num_points = n;
  if (n == 1) {
    out.tree = std::make_shared<TreeMetric>(1, std::vector<TreeEdge>{});
    out.node_stretch.assign(1, 1.0);
    return out;
  }

  double d_max = 0.0;
  double d_min = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double d = metric.distance(i, j);
      require(d > 0.0, "sample_frt_tree: points must be distinct");
      d_max = std::max(d_max, d);
      d_min = std::min(d_min, d);
    }
  }

  // Random FRT parameters: permutation pi and radius scale theta in [1, 2).
  const std::vector<std::size_t> pi = rng.permutation(n);
  const double theta = std::pow(2.0, rng.uniform());

  // Top level: theta * 2^top covers the whole metric.
  int top = 0;
  while (theta * std::pow(2.0, top) < d_max) ++top;

  std::vector<TreeEdge> edges;
  NodeId next_internal = n;  // ids 0..n-1 are reserved for the points
  auto allocate_node = [&](const std::vector<NodeId>& members) {
    if (members.size() == 1) return members.front();
    return next_internal++;
  };

  std::deque<PendingCluster> queue;
  {
    PendingCluster root;
    for (NodeId v = 0; v < n; ++v) root.members.push_back(v);
    root.level = top;
    root.tree_node = allocate_node(root.members);
    queue.push_back(std::move(root));
  }

  while (!queue.empty()) {
    PendingCluster cluster = std::move(queue.front());
    queue.pop_front();
    if (cluster.members.size() == 1) continue;  // leaf: the point itself

    const int child_level = cluster.level - 1;
    const double radius = theta * std::pow(2.0, child_level);
    // Partition by the first permutation element within `radius`.
    // (Centers range over all points, per FRT.)
    std::vector<std::vector<NodeId>> groups;
    std::vector<std::size_t> group_center;  // permutation rank of the center
    std::vector<int> assigned(cluster.members.size(), -1);
    for (std::size_t rank = 0; rank < n; ++rank) {
      const NodeId center = pi[rank];
      std::vector<NodeId> group;
      for (std::size_t k = 0; k < cluster.members.size(); ++k) {
        if (assigned[k] >= 0) continue;
        if (metric.distance(center, cluster.members[k]) <= radius) {
          assigned[k] = static_cast<int>(groups.size());
          group.push_back(cluster.members[k]);
        }
      }
      if (!group.empty()) {
        groups.push_back(std::move(group));
        group_center.push_back(rank);
      }
      if (std::all_of(assigned.begin(), assigned.end(), [](int a) { return a >= 0; })) {
        break;
      }
    }
    ensure(!groups.empty(), "sample_frt_tree: partition must cover the cluster");

    // Edge weight theta * 2^(child_level + 1) guarantees domination: a pair
    // separated at child_level pays 2 * weight >= cluster diameter.
    const double weight = theta * std::pow(2.0, child_level + 1);
    for (auto& group : groups) {
      PendingCluster child;
      child.members = std::move(group);
      child.level = child_level;
      child.tree_node = allocate_node(child.members);
      if (child.tree_node != cluster.tree_node) {
        edges.push_back(TreeEdge{cluster.tree_node, child.tree_node, weight});
        queue.push_back(std::move(child));
      } else {
        // Degenerate: a singleton cluster re-split to itself; nothing to do.
        queue.push_back(std::move(child));
      }
    }
  }

  const std::size_t total_nodes = next_internal;
  auto tree = std::make_shared<TreeMetric>(total_nodes, edges);

  out.node_stretch.assign(n, 1.0);
  for (NodeId v = 0; v < n; ++v) {
    double worst = 1.0;
    for (NodeId u = 0; u < n; ++u) {
      if (u == v) continue;
      const double ratio = tree->distance(u, v) / metric.distance(u, v);
      worst = std::max(worst, ratio);
    }
    out.node_stretch[v] = worst;
  }
  out.tree = std::move(tree);
  return out;
}

FrtFamily sample_frt_family(const MetricSpace& metric, Rng& rng,
                            const FrtFamilyOptions& options) {
  const std::size_t n = metric.size();
  require(n > 0, "sample_frt_family: empty metric");
  require(options.target_coverage > 0.0 && options.target_coverage <= 1.0,
          "sample_frt_family: coverage must lie in (0, 1]");
  int r = options.num_trees;
  if (r <= 0) {
    r = static_cast<int>(std::ceil(4.0 * std::log2(std::max<std::size_t>(2, n)))) + 1;
  }

  FrtFamily family;
  family.trees.reserve(static_cast<std::size_t>(r));
  for (int t = 0; t < r; ++t) family.trees.push_back(sample_frt_tree(metric, rng));

  // The smallest single threshold for which *every* node is core in at
  // least target_coverage of the trees: the max over nodes of each node's
  // ceil(coverage * r)-th smallest stretch.
  const auto rank = static_cast<std::size_t>(
      std::ceil(options.target_coverage * static_cast<double>(r))) - 1;
  double threshold = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    std::vector<double> stretches;
    stretches.reserve(family.trees.size());
    for (const SampledTree& tree : family.trees) stretches.push_back(tree.node_stretch[v]);
    std::sort(stretches.begin(), stretches.end());
    threshold = std::max(threshold, stretches[std::min(rank, stretches.size() - 1)]);
  }
  family.core_threshold = threshold;

  family.core_of.resize(family.trees.size());
  for (std::size_t t = 0; t < family.trees.size(); ++t) {
    for (NodeId v = 0; v < n; ++v) {
      if (family.trees[t].node_stretch[v] <= threshold) family.core_of[t].push_back(v);
    }
  }
  return family;
}

double family_core_coverage(const FrtFamily& family, std::size_t num_points,
                            double coverage) {
  if (family.trees.empty() || num_points == 0) return 0.0;
  const double need = coverage * static_cast<double>(family.trees.size());
  std::vector<int> count(num_points, 0);
  for (const auto& core : family.core_of) {
    for (const NodeId v : core) {
      if (v < num_points) ++count[v];
    }
  }
  std::size_t good = 0;
  for (const int c : count) {
    if (static_cast<double>(c) >= need) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(num_points);
}

}  // namespace oisched
