#include "embed/star_scheduling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/error.h"

namespace oisched {
namespace {

/// Star path loss between two members: (delta_u + delta_v)^alpha.
double star_loss(double radius_a, double radius_b, double alpha) {
  return std::pow(radius_a + radius_b, alpha);
}

/// Interference at `u` from `others` under square-root powers of `losses`.
double star_interference(std::span<const double> radii, std::span<const double> losses,
                         std::span<const std::size_t> others, std::size_t u,
                         double alpha) {
  double total = 0.0;
  for (const std::size_t v : others) {
    if (v == u) continue;
    const double l = star_loss(radii[u], radii[v], alpha);
    if (l <= 0.0) return std::numeric_limits<double>::infinity();
    total += std::sqrt(losses[v]) / l;
  }
  return total;
}

}  // namespace

bool star_subset_feasible(std::span<const double> radii, std::span<const double> losses,
                          std::span<const std::size_t> subset, double alpha, double beta) {
  for (const std::size_t u : subset) {
    const double signal = 1.0 / std::sqrt(losses[u]);  // sqrt(l)/l
    const double interference = star_interference(radii, losses, subset, u, alpha);
    if (!(signal > beta * interference)) return false;
  }
  return true;
}

StarSelectionReport select_star_subset(std::span<const double> radii,
                                       std::span<const double> losses, double alpha,
                                       double beta, const StarSelectionOptions& options) {
  require(radii.size() == losses.size(), "select_star_subset: one loss per radius");
  require(alpha >= 1.0, "select_star_subset: alpha must be >= 1");
  require(beta > 0.0, "select_star_subset: beta must be > 0");
  const std::size_t n = radii.size();
  StarSelectionReport report;
  if (n == 0) return report;
  for (std::size_t i = 0; i < n; ++i) {
    require(losses[i] > 0.0, "select_star_subset: losses must be positive");
    require(radii[i] >= 0.0, "select_star_subset: radii must be non-negative");
  }

  const double beta_witness = options.beta_witness > 0.0 ? options.beta_witness : beta;
  double eps = options.epsilon;
  if (eps <= 0.0) {
    eps = std::pow(beta / beta_witness, 2.0 / 3.0);
    eps = std::clamp(eps, 0.05, 0.5);
  }

  // Scale decays so the smallest is 1 (the paper's "w.l.o.g. d_u > 1").
  double min_radius = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (radii[i] > 0.0) min_radius = std::min(min_radius, radii[i]);
  }
  if (!std::isfinite(min_radius)) min_radius = 1.0;

  std::vector<double> decay(n);           // d_i, scaled
  std::vector<double> clamped_loss(n);    // l'_i, same scale as decay
  const double loss_scale = std::pow(min_radius, alpha);
  const double large_threshold = std::pow(2.0, alpha + 1.0) / beta_witness;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = std::max(radii[i], min_radius) / min_radius;
    decay[i] = std::pow(r, alpha);
    const double scaled_loss = losses[i] / loss_scale;
    const double a_i = scaled_loss / decay[i];
    if (a_i > large_threshold) {
      clamped_loss[i] = decay[i] * large_threshold;
      ++report.dropped_large_loss_clamp;  // counted, not dropped: clamped
    } else {
      clamped_loss[i] = scaled_loss;
    }
  }

  // Decay classes D_j = { 2^{j-1} < d <= 2^j }.
  std::map<int, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < n; ++i) {
    const int j = static_cast<int>(std::ceil(std::log2(std::max(decay[i], 1.0)) - 1e-12));
    classes[std::max(j, 0)].push_back(i);
  }

  // Claim 12: drop over-heavy loss parameters per class.
  std::vector<char> alive(n, 1);
  for (const auto& [j, members] : classes) {
    const double kj = static_cast<double>(members.size());
    const double threshold =
        std::pow(2.0, alpha + static_cast<double>(j) + 2.0) / (eps * beta_witness * kj);
    for (const std::size_t u : members) {
      if (clamped_loss[u] > threshold) {
        alive[u] = 0;
        ++report.dropped_claim12;
      }
    }
  }

  // Lemma-11 selection, computed exactly: a candidate stays when its
  // interference budget holds against *all* remaining candidates (dropping
  // others later only helps).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) candidates.push_back(i);
  }
  std::vector<std::size_t> survivors;
  for (const std::size_t u : candidates) {
    const double budget = 1.0 / (beta * std::sqrt(clamped_loss[u]));
    // Evaluate in the scaled units of the clamped system.
    double scaled_i = 0.0;
    for (const std::size_t v : candidates) {
      if (v == u) continue;
      const double l =
          star_loss(radii[u] / min_radius, radii[v] / min_radius, alpha);
      scaled_i += std::sqrt(clamped_loss[v]) / l;
    }
    if (scaled_i <= budget) {
      survivors.push_back(u);
    } else {
      ++report.dropped_interference;
    }
  }

  // Final exact pass on the original losses: evict the most harmful node
  // until the set is beta-feasible (handles the large/small-loss interplay
  // of Lemmas 13/14 plus any slack lost to clamping).
  std::vector<std::size_t> selected = survivors;
  while (!selected.empty() && !star_subset_feasible(radii, losses, selected, alpha, beta)) {
    // Identify violated victims, then the offender contributing most to them.
    std::vector<char> violated(selected.size(), 0);
    for (std::size_t k = 0; k < selected.size(); ++k) {
      const std::size_t u = selected[k];
      const double signal = 1.0 / std::sqrt(losses[u]);
      const double interference = star_interference(radii, losses, selected, u, alpha);
      violated[k] = !(signal > beta * interference);
    }
    double worst_harm = -1.0;
    std::size_t worst_pos = 0;
    for (std::size_t k = 0; k < selected.size(); ++k) {
      const std::size_t offender = selected[k];
      double harm = 0.0;
      for (std::size_t m = 0; m < selected.size(); ++m) {
        if (!violated[m] || m == k) continue;
        const std::size_t victim = selected[m];
        const double contribution = std::sqrt(losses[offender]) /
                                    star_loss(radii[victim], radii[offender], alpha);
        harm += contribution * beta * std::sqrt(losses[victim]);  // relative to budget
      }
      // A violated node that harms nobody else should be evicted last;
      // bias offenders by their own violation as a tiebreaker.
      if (violated[k]) harm += 1e-12;
      if (harm > worst_harm) {
        worst_harm = harm;
        worst_pos = k;
      }
    }
    selected.erase(selected.begin() + static_cast<std::ptrdiff_t>(worst_pos));
    ++report.dropped_final;
  }

  report.selected = std::move(selected);
  return report;
}

}  // namespace oisched
