#include "embed/gain_scaling.h"

#include <algorithm>

#include "util/error.h"

namespace oisched {

std::vector<std::size_t> node_loss_rescale_subset(const NodeLossInstance& instance,
                                                  std::span<const double> powers,
                                                  std::span<const std::size_t> candidates,
                                                  double alpha, double beta_strict) {
  require(powers.size() == instance.size(), "node_loss_rescale_subset: power per node");
  std::vector<std::size_t> kept;
  for (const std::size_t i : candidates) {
    kept.push_back(i);
    if (!node_loss_feasible(instance, powers, kept, alpha, beta_strict)) kept.pop_back();
  }
  return kept;
}

std::vector<std::vector<std::size_t>> gain_rescale_coloring(
    const MetricSpace& metric, std::span<const Request> requests,
    std::span<const double> powers, std::span<const std::size_t> candidates,
    const SinrParams& strict_params, Variant variant) {
  std::vector<std::vector<std::size_t>> classes;
  std::vector<std::size_t> remaining(candidates.begin(), candidates.end());
  while (!remaining.empty()) {
    std::vector<std::size_t> cls = greedy_feasible_subset(metric, requests, powers,
                                                          remaining, strict_params, variant);
    if (cls.empty()) {
      // A singleton is always feasible (noise-free model); force progress.
      cls.push_back(remaining.front());
    }
    std::vector<char> taken_flag(remaining.size(), 0);
    std::vector<std::size_t> taken_sorted = cls;
    std::sort(taken_sorted.begin(), taken_sorted.end());
    std::vector<std::size_t> next;
    next.reserve(remaining.size() - cls.size());
    for (const std::size_t i : remaining) {
      if (!std::binary_search(taken_sorted.begin(), taken_sorted.end(), i)) {
        next.push_back(i);
      }
    }
    classes.push_back(std::move(cls));
    remaining = std::move(next);
  }
  return classes;
}

}  // namespace oisched
