// Slotted MAC-layer simulator.
//
// Executes a schedule round by round the way the paper's MAC-layer framing
// (Section 1) intends: the pairs of each color transmit simultaneously and
// a transmission succeeds when its SINR clears the gain beta. On the exact
// analysis path (no noise, no fading) the simulator agrees bit-for-bit with
// the analytical validator; with ambient noise and log-normal shadowing it
// measures how much headroom a schedule really has — the robustness
// dimension the paper leaves out of scope.
//
// Bidirectional pairs are simulated as two half-slots (u -> v, then
// v -> u), matching the model's assumption that partners never overlap
// within a pair; the min-loss interference rule of Section 1.1 is the
// worst case over the two half-slots, so analytical feasibility implies
// both half-slots succeed.
#ifndef OISCHED_SIM_SIMULATOR_H
#define OISCHED_SIM_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sinr/gain_matrix.h"

namespace oisched {

struct SimulationOptions {
  /// Number of frames (full passes over the schedule).
  int frames = 1;
  /// Log-normal shadowing: per-link-per-slot gain multiplier
  /// 10^(N(0, sigma_db)/10). 0 disables fading.
  double fading_sigma_db = 0.0;
  /// Retransmission: requests that failed keep transmitting in their slot
  /// of subsequent frames until they succeed (or frames run out).
  bool retransmit = false;
  std::uint64_t seed = 99;
};

struct SimulationResult {
  std::size_t slots = 0;        // total simulated slots
  std::size_t attempted = 0;    // transmission attempts (one per active pair-slot)
  std::size_t succeeded = 0;    // attempts whose SINR cleared beta
  double success_rate = 0.0;    // succeeded / attempted
  double throughput = 0.0;      // successful attempts per slot
  /// Per request: number of successful frames.
  std::vector<int> successes;
  /// Per request: frame index of first success, -1 if never (retransmit
  /// mode measures delivery latency in frames).
  std::vector<int> first_success_frame;
};

class Simulator {
 public:
  Simulator(const Instance& instance, SinrParams params, Variant variant);

  /// Runs the schedule with one fixed power vector.
  [[nodiscard]] SimulationResult run(const Schedule& schedule,
                                     std::span<const double> powers,
                                     const SimulationOptions& options = {}) const;

  /// Runs with per-class powers (for power-control schedules).
  [[nodiscard]] SimulationResult run_classwise(
      const Schedule& schedule, std::span<const std::vector<double>> class_powers,
      const SimulationOptions& options = {}) const;

 private:
  const Instance& instance_;
  SinrParams params_;
  Variant variant_;
  /// Half-slot link losses, tabulated on first run: per-slot interference
  /// then needs no distance or pow work. Lazy so constructing a Simulator
  /// stays O(1); built under call_once so concurrent const runs on one
  /// Simulator stay safe. Arithmetic is bit-identical to the on-the-fly
  /// path.
  mutable std::once_flag link_losses_once_;
  mutable std::unique_ptr<LinkLossMatrix> link_losses_;
};

}  // namespace oisched

#endif  // OISCHED_SIM_SIMULATOR_H
