#include "sim/simulator.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace oisched {
namespace {

/// Per-slot channel: deterministic (gain 1) or log-normal shadowing.
class Channel {
 public:
  Channel(double sigma_db, Rng& rng) : sigma_db_(sigma_db), rng_(rng) {}

  [[nodiscard]] double gain() {
    if (sigma_db_ <= 0.0) return 1.0;
    return std::pow(10.0, rng_.normal(0.0, sigma_db_) / 10.0);
  }

 private:
  double sigma_db_;
  Rng& rng_;
};

}  // namespace

Simulator::Simulator(const Instance& instance, SinrParams params, Variant variant)
    : instance_(instance), params_(params), variant_(variant) {
  params_.validate();
}

SimulationResult Simulator::run(const Schedule& schedule, std::span<const double> powers,
                                const SimulationOptions& options) const {
  require(powers.size() == instance_.size(), "Simulator: one power per request");
  std::vector<std::vector<double>> class_powers;
  const auto classes = color_classes(schedule);
  class_powers.reserve(classes.size());
  for (const auto& members : classes) {
    std::vector<double> p;
    p.reserve(members.size());
    for (const std::size_t i : members) p.push_back(powers[i]);
    class_powers.push_back(std::move(p));
  }
  return run_classwise(schedule, class_powers, options);
}

SimulationResult Simulator::run_classwise(const Schedule& schedule,
                                          std::span<const std::vector<double>> class_powers,
                                          const SimulationOptions& options) const {
  require(options.frames >= 1, "Simulator: need at least one frame");
  const auto classes = color_classes(schedule);
  require(class_powers.size() >= classes.size(), "Simulator: powers for every class");

  SimulationResult result;
  result.successes.assign(instance_.size(), 0);
  result.first_success_frame.assign(instance_.size(), -1);
  std::call_once(link_losses_once_, [this] {
    // The n^2 tables pay off across slots but would dwarf the per-slot
    // work (and memory) on very large instances with small classes; past
    // the threshold the loop below recomputes losses on the fly instead
    // (bit-identical arithmetic either way).
    constexpr std::size_t kMaxTabulatedRequests = 4096;
    if (instance_.size() <= kMaxTabulatedRequests) {
      link_losses_ = std::make_unique<LinkLossMatrix>(instance_.metric(),
                                                      instance_.requests(),
                                                      params_.alpha, variant_);
    }
  });
  Rng rng(options.seed);
  Channel channel(options.fading_sigma_db, rng);

  const int phases = variant_ == Variant::bidirectional ? 2 : 1;
  std::vector<char> delivered(instance_.size(), 0);

  for (int frame = 0; frame < options.frames; ++frame) {
    for (std::size_t c = 0; c < classes.size(); ++c) {
      // Active pairs this slot.
      std::vector<std::size_t> active;
      std::vector<double> active_power;
      for (std::size_t k = 0; k < classes[c].size(); ++k) {
        const std::size_t i = classes[c][k];
        if (options.retransmit && delivered[i]) continue;
        active.push_back(i);
        require(k < class_powers[c].size(), "Simulator: class power vector too short");
        active_power.push_back(class_powers[c][k]);
      }
      ++result.slots;
      if (active.empty()) continue;

      std::vector<char> ok(active.size(), 1);
      for (int phase = 0; phase < phases; ++phase) {
        // Phase 0: u transmits to v. Phase 1 (bidirectional): v to u.
        for (std::size_t k = 0; k < active.size(); ++k) {
          const double own_loss = instance_.loss(active[k], params_.alpha);
          const double signal = active_power[k] * channel.gain() / own_loss;
          double interference = 0.0;
          for (std::size_t m = 0; m < active.size(); ++m) {
            if (m == k) continue;
            double l;
            if (link_losses_) {
              l = phase == 0 ? link_losses_->loss_uv(active[m], active[k])
                             : link_losses_->loss_vu(active[m], active[k]);
            } else {
              const Request& rm = instance_.request(active[m]);
              const Request& rk = instance_.request(active[k]);
              l = path_loss(instance_.metric().distance(phase == 0 ? rm.u : rm.v,
                                                        phase == 0 ? rk.v : rk.u),
                            params_.alpha);
            }
            if (l <= 0.0) {
              interference = std::numeric_limits<double>::infinity();
              break;
            }
            interference += active_power[m] * channel.gain() / l;
          }
          if (!(signal > params_.beta * (interference + params_.noise))) ok[k] = 0;
        }
      }
      for (std::size_t k = 0; k < active.size(); ++k) {
        ++result.attempted;
        if (ok[k]) {
          ++result.succeeded;
          const std::size_t i = active[k];
          ++result.successes[i];
          if (result.first_success_frame[i] < 0) result.first_success_frame[i] = frame;
          delivered[i] = 1;
        }
      }
    }
  }
  result.success_rate = result.attempted > 0
                            ? static_cast<double>(result.succeeded) /
                                  static_cast<double>(result.attempted)
                            : 0.0;
  result.throughput = result.slots > 0 ? static_cast<double>(result.succeeded) /
                                             static_cast<double>(result.slots)
                                       : 0.0;
  return result;
}

}  // namespace oisched
