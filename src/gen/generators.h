// Instance generators: the workloads of the experiment suite.
//
// All generators are deterministic given an Rng and produce instances usable
// in both the directed and the bidirectional variant.
#ifndef OISCHED_GEN_GENERATORS_H
#define OISCHED_GEN_GENERATORS_H

#include <cstddef>

#include "core/instance.h"
#include "util/rng.h"

namespace oisched {

/// How request lengths are drawn.
enum class LengthLaw {
  uniform,      // uniform in [min_length, max_length]
  log_uniform,  // log-uniform: spreads mass across the distance classes
  pareto,       // heavy-tailed with shape 1.5, truncated to the range
};

struct RandomSquareOptions {
  double side = 1000.0;
  double min_length = 1.0;
  double max_length = 64.0;
  LengthLaw law = LengthLaw::log_uniform;
};

/// Senders uniform in a square, receivers at a random direction and a
/// length drawn from `law`. The standard "arbitrary topology" workload.
[[nodiscard]] Instance random_square(std::size_t n, const RandomSquareOptions& options,
                                     Rng& rng);

struct ClusteredOptions {
  double side = 10000.0;
  std::size_t clusters = 8;
  double cluster_stddev = 40.0;
  double min_length = 1.0;
  double max_length = 64.0;
  /// Fraction of requests whose endpoints live in two different clusters
  /// (long-haul links).
  double cross_fraction = 0.1;
};

/// Gaussian clusters with mostly intra-cluster requests — the "hot cells
/// plus backbone" shape of real deployments.
[[nodiscard]] Instance clustered(std::size_t n, const ClusteredOptions& options, Rng& rng);

/// The nested chain of Section 1.2: u_i = -base^i, v_i = +base^i on the
/// line, i = 1..n. Under uniform/linear/superlinear assignments only O(1)
/// of these fit into one color; under the square-root assignment a constant
/// fraction does. Throws OverflowError when base^(n+1) would leave the
/// range where loss^tau stays representable for tau in [0, max_tau].
[[nodiscard]] Instance nested_chain(std::size_t n, double base, double alpha,
                                    double max_tau = 2.0);

/// Requests on a line given explicit endpoint positions (u_i, v_i).
[[nodiscard]] Instance line_instance(std::span<const std::pair<double, double>> endpoints);

}  // namespace oisched

#endif  // OISCHED_GEN_GENERATORS_H
