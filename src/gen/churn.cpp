#include "gen/churn.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <queue>
#include <sstream>
#include <tuple>

#include "metric/metric_space.h"
#include "util/error.h"
#include "util/json_reader.h"

namespace oisched {
namespace {

/// A pending departure: ordered by time, ties broken by insertion sequence
/// so the stream is deterministic however the heap reorders equal times.
struct PendingDeparture {
  double time = 0.0;
  std::size_t seq = 0;
  std::size_t link = 0;

  bool operator>(const PendingDeparture& other) const {
    return std::tie(time, seq) > std::tie(other.time, other.seq);
  }
};

using DepartureQueue =
    std::priority_queue<PendingDeparture, std::vector<PendingDeparture>,
                        std::greater<PendingDeparture>>;

/// Removes and returns a uniformly random element of `pool` (swap-remove,
/// so the pick is O(1) and deterministic in the rng stream).
std::size_t pick_from_pool(std::vector<std::size_t>& pool, Rng& rng) {
  const std::size_t k = static_cast<std::size_t>(rng.uniform_index(pool.size()));
  const std::size_t link = pool[k];
  pool[k] = pool.back();
  pool.pop_back();
  return link;
}

const char* kind_name(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::Kind::arrival:
      return "arrival";
    case ChurnEvent::Kind::departure:
      return "departure";
    case ChurnEvent::Kind::link_arrival:
      return "link_arrival";
    case ChurnEvent::Kind::link_update:
      return "link_update";
  }
  return "unknown";
}

}  // namespace

void ChurnTrace::validate() const {
  std::vector<char> active(universe, 0);
  double last_time = 0.0;
  for (const ChurnEvent& event : events) {
    require(event.time >= last_time, "ChurnTrace: time must be non-decreasing");
    last_time = event.time;
    if (event.kind == ChurnEvent::Kind::link_arrival) {
      require(event.link == active.size(),
              "ChurnTrace: fresh links must take the next universe index");
      active.push_back(1);  // a fresh link arrives active
      continue;
    }
    require(event.link < active.size(), "ChurnTrace: link index out of universe");
    if (event.kind == ChurnEvent::Kind::arrival) {
      require(!active[event.link], "ChurnTrace: arrival of an already active link");
      active[event.link] = 1;
    } else if (event.kind == ChurnEvent::Kind::link_update) {
      // Motion targets live links only: a never-arrived or departed link
      // has no gain row to refresh and no class to re-validate.
      require(active[event.link], "ChurnTrace: update of an inactive link");
    } else {
      require(active[event.link], "ChurnTrace: departure of an inactive link");
      active[event.link] = 0;
    }
  }
}

std::size_t ChurnTrace::final_universe() const {
  std::size_t total = universe;
  for (const ChurnEvent& event : events) {
    if (event.kind == ChurnEvent::Kind::link_arrival) ++total;
  }
  return total;
}

bool ChurnTrace::has_fresh_links() const {
  for (const ChurnEvent& event : events) {
    if (event.kind == ChurnEvent::Kind::link_arrival) return true;
  }
  return false;
}

bool ChurnTrace::has_link_updates() const {
  for (const ChurnEvent& event : events) {
    if (event.kind == ChurnEvent::Kind::link_update) return true;
  }
  return false;
}

std::vector<std::size_t> ChurnTrace::final_active() const {
  std::vector<char> active(universe, 0);
  for (const ChurnEvent& event : events) {
    if (event.kind == ChurnEvent::Kind::link_arrival) {
      active.push_back(1);
    } else if (event.kind != ChurnEvent::Kind::link_update) {
      active[event.link] = event.kind == ChurnEvent::Kind::arrival ? 1 : 0;
    }
  }
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i]) result.push_back(i);
  }
  return result;
}

std::size_t ChurnTrace::peak_active() const {
  std::size_t now = 0;
  std::size_t peak = 0;
  for (const ChurnEvent& event : events) {
    if (event.kind == ChurnEvent::Kind::departure) {
      --now;
    } else if (event.kind != ChurnEvent::Kind::link_update) {
      peak = std::max(peak, ++now);
    }
  }
  return peak;
}

namespace {

/// The shared Poisson churn loop: arrivals drawn from `inactive`,
/// exponential holding times, until `max_events` events (or the pool dries
/// up both ways). poisson_trace runs it over the whole universe,
/// hotspot_trace over a window of it.
void poisson_churn_over_pool(ChurnTrace& trace, std::vector<std::size_t>& inactive,
                             double arrival_rate, double mean_holding_time,
                             std::size_t max_events, Rng& rng) {
  DepartureQueue pending;
  std::size_t seq = 0;

  double t = 0.0;
  double next_arrival = rng.exponential(arrival_rate);
  while (trace.events.size() < max_events) {
    const bool can_arrive = !inactive.empty();
    const bool can_depart = !pending.empty();
    if (!can_arrive && !can_depart) break;  // pool exhausted both ways
    if (can_arrive && (!can_depart || next_arrival <= pending.top().time)) {
      // When the pool was saturated the arrival waited for a free link; it
      // then fires immediately, never before the freeing departure.
      t = std::max(t, next_arrival);
      const std::size_t link = pick_from_pool(inactive, rng);
      trace.events.push_back({ChurnEvent::Kind::arrival, link, t, {}});
      pending.push({t + rng.exponential(1.0 / mean_holding_time), seq++, link});
      next_arrival += rng.exponential(arrival_rate);
    } else {
      const PendingDeparture departure = pending.top();
      pending.pop();
      t = std::max(t, departure.time);
      trace.events.push_back({ChurnEvent::Kind::departure, departure.link, t, {}});
      inactive.push_back(departure.link);
    }
  }
}

}  // namespace

ChurnTrace poisson_trace(std::size_t universe, const PoissonChurnOptions& options,
                         Rng& rng) {
  require(universe > 0, "poisson_trace: universe must be non-empty");
  require(options.arrival_rate > 0.0, "poisson_trace: arrival rate must be positive");
  require(options.mean_holding_time > 0.0,
          "poisson_trace: mean holding time must be positive");

  ChurnTrace trace;
  trace.universe = universe;
  trace.events.reserve(options.max_events);
  std::vector<std::size_t> inactive(universe);
  for (std::size_t i = 0; i < universe; ++i) inactive[i] = i;
  poisson_churn_over_pool(trace, inactive, options.arrival_rate,
                          options.mean_holding_time, options.max_events, rng);
  return trace;
}

ChurnTrace hotspot_trace(std::size_t universe, const HotspotChurnOptions& options,
                         Rng& rng) {
  require(universe > 0, "hotspot_trace: universe must be non-empty");
  const std::size_t window =
      options.window > 0 ? options.window : std::min<std::size_t>(universe, 128);
  require(window <= universe, "hotspot_trace: window cannot exceed the universe");
  require(options.mean_holding_time > 0.0,
          "hotspot_trace: mean holding time must be positive");
  const double rate =
      options.arrival_rate > 0.0
          ? options.arrival_rate
          : std::max(1.0, static_cast<double>(window) / (2.0 * options.mean_holding_time));
  const std::size_t max_events =
      options.max_events > 0 ? options.max_events : 8 * window;

  ChurnTrace trace;
  trace.universe = universe;
  trace.events.reserve(max_events);
  std::vector<std::size_t> inactive(window);
  for (std::size_t i = 0; i < window; ++i) inactive[i] = i;
  poisson_churn_over_pool(trace, inactive, rate, options.mean_holding_time, max_events,
                          rng);
  return trace;
}

ChurnTrace growing_trace(std::size_t initial_universe,
                         std::span<const Request> fresh_links,
                         const GrowingChurnOptions& options, Rng& rng) {
  require(initial_universe > 0, "growing_trace: initial universe must be non-empty");
  require(!fresh_links.empty(), "growing_trace: need at least one fresh link");
  require(options.mean_holding_time > 0.0,
          "growing_trace: mean holding time must be positive");
  const std::size_t final_universe = initial_universe + fresh_links.size();
  const double rate = options.arrival_rate > 0.0
                          ? options.arrival_rate
                          : std::max(1.0, static_cast<double>(final_universe) /
                                              (2.0 * options.mean_holding_time));
  const std::size_t max_events =
      options.max_events > 0 ? options.max_events : 16 * final_universe;
  // The generator's contract is that EVERY fresh link gets introduced; a
  // budget at or below the pool size could not keep it, so it is rejected
  // rather than silently truncating the growth.
  require(max_events > fresh_links.size(),
          "growing_trace: event budget must exceed the fresh-link pool");
  // Fresh links are introduced evenly across the event budget (by ordinal
  // event position — deterministic regardless of how the churn falls).
  // interval >= 1 and fresh * interval < max_events, so the last
  // introduction always lands inside the budget.
  const std::size_t interval =
      std::max<std::size_t>(1, max_events / (fresh_links.size() + 1));

  ChurnTrace trace;
  trace.universe = initial_universe;
  trace.events.reserve(max_events);

  std::vector<std::size_t> inactive(initial_universe);
  for (std::size_t i = 0; i < initial_universe; ++i) inactive[i] = i;
  DepartureQueue pending;
  std::size_t seq = 0;
  std::size_t introduced = 0;

  double t = 0.0;
  double next_arrival = rng.exponential(rate);
  while (trace.events.size() < max_events) {
    if (introduced < fresh_links.size() &&
        trace.events.size() >= (introduced + 1) * interval) {
      // Grow the universe: the fresh link takes the next index, arrives
      // active at the current time, and drains like any other link.
      const std::size_t link = initial_universe + introduced;
      trace.events.push_back(
          {ChurnEvent::Kind::link_arrival, link, t, fresh_links[introduced]});
      pending.push({t + rng.exponential(1.0 / options.mean_holding_time), seq++, link});
      ++introduced;
      continue;
    }
    const bool can_arrive = !inactive.empty();
    const bool can_depart = !pending.empty();
    if (!can_arrive && !can_depart) {
      if (introduced >= fresh_links.size()) break;
      // Nothing to churn yet, but fresh links remain: introduce the next
      // one early rather than stall.
      const std::size_t link = initial_universe + introduced;
      trace.events.push_back(
          {ChurnEvent::Kind::link_arrival, link, t, fresh_links[introduced]});
      pending.push({t + rng.exponential(1.0 / options.mean_holding_time), seq++, link});
      ++introduced;
      continue;
    }
    if (can_arrive && (!can_depart || next_arrival <= pending.top().time)) {
      t = std::max(t, next_arrival);
      const std::size_t link = pick_from_pool(inactive, rng);
      trace.events.push_back({ChurnEvent::Kind::arrival, link, t, {}});
      pending.push({t + rng.exponential(1.0 / options.mean_holding_time), seq++, link});
      next_arrival += rng.exponential(rate);
    } else {
      const PendingDeparture departure = pending.top();
      pending.pop();
      t = std::max(t, departure.time);
      trace.events.push_back({ChurnEvent::Kind::departure, departure.link, t, {}});
      inactive.push_back(departure.link);
    }
  }
  return trace;
}

ChurnTrace flash_crowd_trace(std::size_t universe, const FlashCrowdOptions& options,
                             Rng& rng) {
  require(universe > 0, "flash_crowd_trace: universe must be non-empty");
  require(options.bursts > 0, "flash_crowd_trace: need at least one burst");
  require(options.burst_spacing > 0.0 && options.burst_width > 0.0,
          "flash_crowd_trace: burst geometry must be positive");
  require(options.mean_holding_time > 0.0,
          "flash_crowd_trace: mean holding time must be positive");
  const std::size_t burst_size =
      options.burst_size > 0 ? options.burst_size : std::max<std::size_t>(1, universe / 4);

  // All crowd arrival instants first (one rng pass), then a deterministic
  // time sweep that merges them with the departures they trigger.
  std::vector<double> arrivals;
  arrivals.reserve(options.bursts * burst_size);
  for (std::size_t b = 0; b < options.bursts; ++b) {
    const double front = static_cast<double>(b) * options.burst_spacing;
    for (std::size_t k = 0; k < burst_size; ++k) {
      arrivals.push_back(front + rng.uniform(0.0, options.burst_width));
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end());

  ChurnTrace trace;
  trace.universe = universe;
  std::vector<std::size_t> inactive(universe);
  for (std::size_t i = 0; i < universe; ++i) inactive[i] = i;
  DepartureQueue pending;
  std::size_t seq = 0;
  std::size_t next = 0;
  double t = 0.0;
  while (next < arrivals.size() || !pending.empty()) {
    if (next < arrivals.size() &&
        (pending.empty() || arrivals[next] <= pending.top().time)) {
      t = std::max(t, arrivals[next]);
      ++next;
      if (inactive.empty()) continue;  // crowd overflow: the universe is full
      const std::size_t link = pick_from_pool(inactive, rng);
      trace.events.push_back({ChurnEvent::Kind::arrival, link, t});
      pending.push({t + rng.exponential(1.0 / options.mean_holding_time), seq++, link});
    } else {
      const PendingDeparture departure = pending.top();
      pending.pop();
      t = std::max(t, departure.time);
      trace.events.push_back({ChurnEvent::Kind::departure, departure.link, t});
      inactive.push_back(departure.link);
    }
  }
  return trace;
}

ChurnTrace adversarial_chain_trace(std::size_t universe,
                                   const AdversarialChurnOptions& options, Rng& rng) {
  require(universe > 0, "adversarial_chain_trace: universe must be non-empty");
  require(options.chain_length >= 2,
          "adversarial_chain_trace: chains need at least two links");
  require(options.chain_length <= universe,
          "adversarial_chain_trace: chain cannot exceed the universe");
  // Every round retires one link for good, so only so many rounds fit.
  const std::size_t max_rounds = universe - options.chain_length + 1;
  std::size_t rounds = options.rounds > 0 ? options.rounds : universe / 2;
  rounds = std::min(rounds, max_rounds);

  ChurnTrace trace;
  trace.universe = universe;
  std::vector<std::size_t> inactive(universe);
  for (std::size_t i = 0; i < universe; ++i) inactive[i] = i;
  double t = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::size_t> chain;
    chain.reserve(options.chain_length);
    for (std::size_t k = 0; k < options.chain_length; ++k) {
      chain.push_back(pick_from_pool(inactive, rng));
    }
    for (const std::size_t link : chain) {
      trace.events.push_back({ChurnEvent::Kind::arrival, link, t});
      t += 1.0;
    }
    // Delete all but the last insert; the survivor fragments every future
    // first-fit pass a little more.
    for (std::size_t k = 0; k + 1 < chain.size(); ++k) {
      trace.events.push_back({ChurnEvent::Kind::departure, chain[k], t});
      t += 1.0;
      inactive.push_back(chain[k]);
    }
  }
  return trace;
}

namespace {

/// Metric-only geodesic interpolation: the node whose distances best split
/// the from -> target geodesic at `travel` of the way (minimizing
/// |d(from, x) - travel| + |d(x, target) - (d - travel)|; ties go to the
/// lowest id, so the pick is deterministic). Nodes co-located with `avoid`
/// are excluded — a moved endpoint must stay at a distinct position from
/// its partner, the invariant every gain table requires. `from` itself
/// always qualifies (the caller guarantees d(from, avoid) > 0), so the
/// step never strands an endpoint without a legal position.
NodeId step_toward(const MetricSpace& metric, NodeId from, NodeId target,
                   double fraction, NodeId avoid) {
  const double total = metric.distance(from, target);
  if (total == 0.0) return from;
  const double travel = fraction * total;
  NodeId best = from;
  double best_score = std::numeric_limits<double>::infinity();
  for (NodeId x = 0; x < metric.size(); ++x) {
    if (metric.distance(x, avoid) == 0.0) continue;
    const double score = std::abs(metric.distance(from, x) - travel) +
                         std::abs(metric.distance(x, target) - (total - travel));
    if (score < best_score) {
      best_score = score;
      best = x;
    }
  }
  return best;
}

/// Steps request `r` toward the anchor pair (wu, wv); returns true when an
/// endpoint actually moved. The sender steps first (avoiding the old
/// receiver), then the receiver (avoiding the new sender) — each step's
/// avoid node sits at a positive distance from the stepped endpoint's old
/// position, so the updated endpoints are always at distinct positions.
bool step_link(const MetricSpace& metric, Request& r, NodeId wu, NodeId wv,
               double fraction) {
  const NodeId nu = step_toward(metric, r.u, wu, fraction, r.v);
  const NodeId nv = step_toward(metric, r.v, wv, fraction, nu);
  if (nu == r.u && nv == r.v) return false;
  r.u = nu;
  r.v = nv;
  return true;
}

/// True when `r` sits on the anchor pair (both geodesic remainders zero).
bool at_anchor(const MetricSpace& metric, const Request& r, NodeId wu, NodeId wv) {
  return metric.distance(r.u, wu) == 0.0 && metric.distance(r.v, wv) == 0.0;
}

void require_mobility_inputs(const MetricSpace& metric,
                             std::span<const Request> requests,
                             const std::string& who) {
  require(!requests.empty(), who + ": universe must be non-empty");
  require(metric.size() >= 2, who + ": motion needs at least two nodes");
  for (const Request& r : requests) {
    require(r.u < metric.size() && r.v < metric.size(),
            who + ": request endpoint out of metric range");
  }
}

}  // namespace

ChurnTrace waypoint_trace(const MetricSpace& metric, std::span<const Request> requests,
                          const WaypointMobilityOptions& options, Rng& rng) {
  require_mobility_inputs(metric, requests, "waypoint_trace");
  require(options.mean_holding_time > 0.0,
          "waypoint_trace: mean holding time must be positive");
  require(options.step_fraction > 0.0 && options.step_fraction <= 1.0,
          "waypoint_trace: step fraction must be in (0, 1]");
  const std::size_t universe = requests.size();
  const double arrival_rate =
      options.arrival_rate > 0.0
          ? options.arrival_rate
          : std::max(1.0,
                     static_cast<double>(universe) / (2.0 * options.mean_holding_time));
  const double move_rate = options.move_rate > 0.0
                               ? options.move_rate
                               : std::max(1.0, static_cast<double>(universe) / 2.0);
  const std::size_t max_events =
      options.max_events > 0 ? options.max_events : 16 * universe;
  constexpr double kNever = std::numeric_limits<double>::infinity();

  ChurnTrace trace;
  trace.universe = universe;
  trace.events.reserve(max_events);
  std::vector<Request> current(requests.begin(), requests.end());
  std::vector<std::pair<NodeId, NodeId>> waypoint(universe);
  for (auto& w : waypoint) {
    w = {static_cast<NodeId>(rng.uniform_index(metric.size())),
         static_cast<NodeId>(rng.uniform_index(metric.size()))};
  }

  std::vector<std::size_t> inactive(universe);
  for (std::size_t i = 0; i < universe; ++i) inactive[i] = i;
  std::vector<std::size_t> active;
  DepartureQueue pending;
  std::size_t seq = 0;

  double t = 0.0;
  double next_arrival = rng.exponential(arrival_rate);
  double next_move = rng.exponential(move_rate);
  // Motion ticks that change nothing emit no event; the tick budget stops
  // a pathological all-parked stream from spinning forever.
  std::size_t ticks = 0;
  const std::size_t max_ticks = 8 * max_events;
  while (trace.events.size() < max_events && ticks++ < max_ticks) {
    const bool can_arrive = !inactive.empty();
    const bool can_depart = !pending.empty();
    const bool can_move = !active.empty();
    if (!can_arrive && !can_depart) break;
    const double arrival_at = can_arrive ? next_arrival : kNever;
    const double departure_at = can_depart ? pending.top().time : kNever;
    const double move_at = can_move ? next_move : kNever;
    if (arrival_at <= departure_at && arrival_at <= move_at) {
      t = std::max(t, arrival_at);
      const std::size_t link = pick_from_pool(inactive, rng);
      trace.events.push_back({ChurnEvent::Kind::arrival, link, t, {}});
      active.push_back(link);
      pending.push({t + rng.exponential(1.0 / options.mean_holding_time), seq++, link});
      next_arrival += rng.exponential(arrival_rate);
    } else if (move_at <= departure_at) {
      t = std::max(t, move_at);
      next_move += rng.exponential(move_rate);
      const std::size_t link = active[rng.uniform_index(active.size())];
      const auto [wu, wv] = waypoint[link];
      const bool moved = step_link(metric, current[link], wu, wv, options.step_fraction);
      if (moved) {
        trace.events.push_back({ChurnEvent::Kind::link_update, link, t, current[link]});
      }
      if (!moved || at_anchor(metric, current[link], wu, wv)) {
        // Arrived (or parked against the distinct-endpoint constraint):
        // wander on toward a fresh waypoint.
        waypoint[link] = {static_cast<NodeId>(rng.uniform_index(metric.size())),
                          static_cast<NodeId>(rng.uniform_index(metric.size()))};
      }
    } else {
      const PendingDeparture departure = pending.top();
      pending.pop();
      t = std::max(t, departure.time);
      trace.events.push_back({ChurnEvent::Kind::departure, departure.link, t, {}});
      const auto it = std::find(active.begin(), active.end(), departure.link);
      *it = active.back();
      active.pop_back();
      inactive.push_back(departure.link);
    }
  }
  return trace;
}

ChurnTrace commuter_trace(const MetricSpace& metric, std::span<const Request> requests,
                          const CommuterMobilityOptions& options, Rng& rng) {
  require_mobility_inputs(metric, requests, "commuter_trace");
  require(options.rounds > 0, "commuter_trace: need at least one motion round");
  require(options.step_fraction > 0.0 && options.step_fraction <= 1.0,
          "commuter_trace: step fraction must be in (0, 1]");
  const std::size_t universe = requests.size();
  const std::size_t max_events =
      options.max_events > 0 ? options.max_events : universe * (1 + options.rounds);

  ChurnTrace trace;
  trace.universe = universe;
  trace.events.reserve(max_events);
  std::vector<Request> current(requests.begin(), requests.end());
  const std::vector<Request> home(requests.begin(), requests.end());
  std::vector<Request> work(universe);
  std::vector<char> heading_to_work(universe, 1);
  for (Request& anchor : work) {
    anchor = {static_cast<NodeId>(rng.uniform_index(metric.size())),
              static_cast<NodeId>(rng.uniform_index(metric.size()))};
  }

  double t = 0.0;
  // The whole town wakes up: every link arrives before the commute starts.
  for (std::size_t i = 0; i < universe && trace.events.size() < max_events; ++i) {
    trace.events.push_back({ChurnEvent::Kind::arrival, i, t, {}});
    t += 1.0;
  }
  for (std::size_t round = 0; round < options.rounds; ++round) {
    if (trace.events.size() >= max_events) break;
    for (const std::size_t link : rng.permutation(universe)) {
      if (trace.events.size() >= max_events) break;
      const Request& target = heading_to_work[link] ? work[link] : home[link];
      const bool moved =
          step_link(metric, current[link], target.u, target.v, options.step_fraction);
      if (moved) {
        trace.events.push_back({ChurnEvent::Kind::link_update, link, t, current[link]});
        t += 1.0;
      }
      if (!moved || at_anchor(metric, current[link], target.u, target.v)) {
        heading_to_work[link] = heading_to_work[link] ? 0 : 1;  // turn around
      }
    }
  }
  return trace;
}

ChurnTrace flash_mob_trace(const MetricSpace& metric, std::span<const Request> requests,
                           const FlashMobOptions& options, Rng& rng) {
  require_mobility_inputs(metric, requests, "flash_mob_trace");
  require(options.mobs > 0, "flash_mob_trace: need at least one mob");
  require(options.drift_steps > 0, "flash_mob_trace: need at least one drift step");
  require(options.step_fraction > 0.0 && options.step_fraction <= 1.0,
          "flash_mob_trace: step fraction must be in (0, 1]");
  const std::size_t universe = requests.size();
  const std::size_t crowd_size = std::min(
      universe,
      options.crowd > 0 ? options.crowd : std::max<std::size_t>(1, universe / 4));
  const std::size_t churn_links = options.churn_links > 0
                                      ? options.churn_links
                                      : std::max<std::size_t>(1, universe / 8);
  const std::size_t max_events =
      options.max_events > 0 ? options.max_events : 16 * universe;

  ChurnTrace trace;
  trace.universe = universe;
  trace.events.reserve(max_events);
  std::vector<Request> current(requests.begin(), requests.end());
  std::vector<char> active(universe, 0);

  double t = 0.0;
  const auto emit = [&](ChurnEvent event) {
    if (trace.events.size() >= max_events) return false;
    event.time = t;
    trace.events.push_back(event);
    t += 1.0;
    return true;
  };
  // Everyone shows up before the first mob forms.
  for (std::size_t i = 0; i < universe; ++i) {
    if (emit({ChurnEvent::Kind::arrival, i, 0.0, {}})) active[i] = 1;
  }
  for (std::size_t mob = 0; mob < options.mobs; ++mob) {
    // The mob: a random crowd of active links drifts toward one hotspot.
    const NodeId hotspot = static_cast<NodeId>(rng.uniform_index(metric.size()));
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < universe; ++i) {
      if (active[i]) pool.push_back(i);
    }
    std::vector<std::size_t> crowd;
    for (std::size_t k = 0; k < crowd_size && !pool.empty(); ++k) {
      crowd.push_back(pick_from_pool(pool, rng));
    }
    std::vector<Request> before;  // the positions the crowd disperses back to
    before.reserve(crowd.size());
    for (const std::size_t link : crowd) before.push_back(current[link]);
    for (std::size_t step = 0; step < options.drift_steps; ++step) {
      for (const std::size_t link : crowd) {
        if (step_link(metric, current[link], hotspot, hotspot, options.step_fraction)) {
          emit({ChurnEvent::Kind::link_update, link, 0.0, current[link]});
        }
      }
    }
    // The mob disperses the way it came.
    for (std::size_t step = 0; step < options.drift_steps; ++step) {
      for (std::size_t k = 0; k < crowd.size(); ++k) {
        const std::size_t link = crowd[k];
        if (step_link(metric, current[link], before[k].u, before[k].v,
                      options.step_fraction)) {
          emit({ChurnEvent::Kind::link_update, link, 0.0, current[link]});
        }
      }
    }
    // Background churn between mobs: a few links leave and return.
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < universe; ++i) {
      if (active[i]) alive.push_back(i);
    }
    std::vector<std::size_t> leavers;
    for (std::size_t k = 0; k < churn_links && !alive.empty(); ++k) {
      leavers.push_back(pick_from_pool(alive, rng));
    }
    for (const std::size_t link : leavers) {
      if (emit({ChurnEvent::Kind::departure, link, 0.0, {}})) active[link] = 0;
    }
    for (const std::size_t link : leavers) {
      if (active[link] == 0 && emit({ChurnEvent::Kind::arrival, link, 0.0, {}})) {
        active[link] = 1;
      }
    }
  }
  return trace;
}

ChurnTrace make_churn_trace(const std::string& kind, std::size_t universe,
                            std::size_t target_events, Rng& rng,
                            std::span<const Request> fresh_links,
                            const MetricSpace* metric,
                            std::span<const Request> initial_requests) {
  if (kind == "waypoint" || kind == "commuter" || kind == "flashmob") {
    require(fresh_links.empty(),
            "make_churn_trace: only growing traces take fresh links");
    require(metric != nullptr && initial_requests.size() == universe,
            "make_churn_trace: mobility traces need the metric and the universe's "
            "requests");
    if (kind == "waypoint") {
      WaypointMobilityOptions options;
      if (target_events > 0) options.max_events = target_events;
      return waypoint_trace(*metric, initial_requests, options, rng);
    }
    if (kind == "commuter") {
      CommuterMobilityOptions options;
      if (target_events > 0) options.max_events = target_events;
      return commuter_trace(*metric, initial_requests, options, rng);
    }
    FlashMobOptions options;
    if (target_events > 0) options.max_events = target_events;
    return flash_mob_trace(*metric, initial_requests, options, rng);
  }
  if (kind == "hotspot") {
    HotspotChurnOptions options;
    if (target_events > 0) options.max_events = target_events;
    return hotspot_trace(universe, options, rng);
  }
  if (kind == "growing") {
    require(!fresh_links.empty(),
            "make_churn_trace: growing traces need the fresh-link pool");
    GrowingChurnOptions options;
    if (target_events > 0) options.max_events = target_events;
    return growing_trace(universe, fresh_links, options, rng);
  }
  require(fresh_links.empty(),
          "make_churn_trace: only growing traces take fresh links");
  if (kind == "poisson") {
    PoissonChurnOptions options;
    // Arrival rate scaled so steady state keeps ~half the universe active
    // (rate * holding ≈ n/2); enough events by default that steady-state
    // churn dominates the warm-up ramp.
    options.arrival_rate =
        std::max(1.0, static_cast<double>(universe) / (2.0 * options.mean_holding_time));
    options.max_events = target_events > 0 ? target_events : 16 * universe;
    return poisson_trace(universe, options, rng);
  }
  if (kind == "flash") {
    FlashCrowdOptions options;
    // Every crowd arrival eventually departs: ~2 * bursts * burst_size
    // events total.
    if (target_events > 0) {
      options.burst_size = std::max<std::size_t>(1, target_events / (2 * options.bursts));
    }
    return flash_crowd_trace(universe, options, rng);
  }
  if (kind == "adversarial") {
    require(universe >= 2, "make_churn_trace: adversarial chains need >= 2 links");
    AdversarialChurnOptions options;
    // Chains cannot exceed the universe (tiny instances get short chains).
    options.chain_length = std::min(options.chain_length, universe);
    // Each round emits chain_length arrivals + (chain_length - 1) departures.
    if (target_events > 0) {
      options.rounds =
          std::max<std::size_t>(1, target_events / (2 * options.chain_length - 1));
    }
    return adversarial_chain_trace(universe, options, rng);
  }
  throw PreconditionError("make_churn_trace: unknown trace kind '" + kind + "'");
}

JsonValue trace_to_json(const ChurnTrace& trace) {
  JsonValue root = JsonValue::object();
  root["schema"] = "oisched-trace/3";
  root["universe"] = trace.universe;
  JsonValue events = JsonValue::array();
  for (const ChurnEvent& event : trace.events) {
    JsonValue entry = JsonValue::object();
    entry["t"] = event.time;
    entry["kind"] = kind_name(event.kind);
    entry["link"] = event.link;
    if (event.kind == ChurnEvent::Kind::link_arrival ||
        event.kind == ChurnEvent::Kind::link_update) {
      entry["u"] = event.request.u;
      entry["v"] = event.request.v;
    }
    events.push_back(std::move(entry));
  }
  root["events"] = std::move(events);
  return root;
}

ChurnTrace trace_from_json(const JsonValue& document) {
  const std::string& schema = document.at("schema").as_string();
  // "/1" is the legacy fixed-universe schema: same layout, no
  // universe-growing events — still read for old trace files.
  const bool fixed_universe_only = schema == "oisched-trace/1";
  // "/2" added universe-growing link_arrival events; "/3" adds
  // endpoint-motion link_update events. Each kind is only legal from the
  // schema revision that introduced it.
  const bool churn_only = fixed_universe_only || schema == "oisched-trace/2";
  require(churn_only || schema == "oisched-trace/3",
          "trace_from_json: unsupported trace schema");
  const std::int64_t universe = document.at("universe").as_int();
  require(universe >= 0, "trace_from_json: universe must be non-negative");

  ChurnTrace trace;
  trace.universe = static_cast<std::size_t>(universe);
  const JsonValue& events = document.at("events");
  trace.events.reserve(events.size());
  for (std::size_t k = 0; k < events.size(); ++k) {
    const JsonValue& entry = events.item(k);
    ChurnEvent event;
    event.time = entry.at("t").as_double();
    const std::string& kind = entry.at("kind").as_string();
    if (kind == "arrival") {
      event.kind = ChurnEvent::Kind::arrival;
    } else if (kind == "departure") {
      event.kind = ChurnEvent::Kind::departure;
    } else if ((kind == "link_arrival" && !fixed_universe_only) ||
               (kind == "link_update" && !churn_only)) {
      event.kind = kind == "link_arrival" ? ChurnEvent::Kind::link_arrival
                                          : ChurnEvent::Kind::link_update;
      const JsonValue* u_field = entry.find("u");
      const JsonValue* v_field = entry.find("v");
      require(u_field != nullptr && v_field != nullptr,
              "trace_from_json: " + kind + " record is missing its endpoints");
      const std::int64_t u = u_field->as_int();
      const std::int64_t v = v_field->as_int();
      require(u >= 0 && v >= 0, "trace_from_json: endpoints must be non-negative");
      event.request.u = static_cast<NodeId>(u);
      event.request.v = static_cast<NodeId>(v);
    } else {
      throw PreconditionError("trace_from_json: unknown event kind '" + kind + "'");
    }
    const std::int64_t link = entry.at("link").as_int();
    require(link >= 0, "trace_from_json: link must be non-negative");
    event.link = static_cast<std::size_t>(link);
    trace.events.push_back(event);
  }
  trace.validate();
  return trace;
}

void save_trace(const std::string& path, const ChurnTrace& trace) {
  std::ofstream out(path);
  require(out.good(), "save_trace: cannot open '" + path + "' for writing");
  out << trace_to_json(trace).dump() << '\n';
  require(out.good(), "save_trace: write to '" + path + "' failed");
}

ChurnTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_trace: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return trace_from_json(parse_json(buffer.str()));
}

Expected<ChurnTrace> try_load_trace(const std::string& path) {
  try {
    return load_trace(path);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

}  // namespace oisched
