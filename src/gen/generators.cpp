#include "gen/generators.h"

#include <cmath>
#include <memory>
#include <numbers>
#include <utility>

#include "metric/euclidean.h"
#include "util/error.h"

namespace oisched {
namespace {

double sample_length(double min_length, double max_length, LengthLaw law, Rng& rng) {
  require(min_length > 0.0 && max_length >= min_length,
          "generators: need 0 < min_length <= max_length");
  switch (law) {
    case LengthLaw::uniform:
      return rng.uniform(min_length, max_length);
    case LengthLaw::log_uniform: {
      const double lo = std::log(min_length);
      const double hi = std::log(max_length);
      return std::exp(rng.uniform(lo, hi));
    }
    case LengthLaw::pareto: {
      // Truncated Pareto, shape 1.5: invert the truncated CDF.
      const double shape = 1.5;
      const double lo = std::pow(min_length, -shape);
      const double hi = std::pow(max_length, -shape);
      const double u = rng.uniform();
      return std::pow(lo + u * (hi - lo), -1.0 / shape);
    }
  }
  throw PreconditionError("generators: unknown length law");
}

Instance build_instance(std::vector<Point> points, std::vector<Request> requests) {
  auto metric = std::make_shared<EuclideanMetric>(std::move(points));
  return Instance(std::move(metric), std::move(requests));
}

}  // namespace

Instance random_square(std::size_t n, const RandomSquareOptions& options, Rng& rng) {
  require(n > 0, "random_square: need at least one request");
  std::vector<Point> points;
  std::vector<Request> requests;
  points.reserve(2 * n);
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point sender{rng.uniform(0.0, options.side), rng.uniform(0.0, options.side), 0.0};
    const double length =
        sample_length(options.min_length, options.max_length, options.law, rng);
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const Point receiver{sender.x + length * std::cos(angle),
                         sender.y + length * std::sin(angle), 0.0};
    points.push_back(sender);
    points.push_back(receiver);
    requests.push_back(Request{2 * i, 2 * i + 1});
  }
  return build_instance(std::move(points), std::move(requests));
}

Instance clustered(std::size_t n, const ClusteredOptions& options, Rng& rng) {
  require(n > 0, "clustered: need at least one request");
  require(options.clusters > 0, "clustered: need at least one cluster");
  require(options.cross_fraction >= 0.0 && options.cross_fraction <= 1.0,
          "clustered: cross_fraction must lie in [0, 1]");
  std::vector<Point> centers;
  centers.reserve(options.clusters);
  for (std::size_t c = 0; c < options.clusters; ++c) {
    centers.push_back(
        Point{rng.uniform(0.0, options.side), rng.uniform(0.0, options.side), 0.0});
  }
  std::vector<Point> points;
  std::vector<Request> requests;
  points.reserve(2 * n);
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t home = static_cast<std::size_t>(rng.uniform_index(options.clusters));
    const Point sender{centers[home].x + rng.normal(0.0, options.cluster_stddev),
                       centers[home].y + rng.normal(0.0, options.cluster_stddev), 0.0};
    Point receiver;
    if (options.clusters > 1 && rng.bernoulli(options.cross_fraction)) {
      // Long-haul: receiver near a different cluster's center.
      std::size_t other = home;
      while (other == home) {
        other = static_cast<std::size_t>(rng.uniform_index(options.clusters));
      }
      receiver = Point{centers[other].x + rng.normal(0.0, options.cluster_stddev),
                       centers[other].y + rng.normal(0.0, options.cluster_stddev), 0.0};
    } else {
      const double length =
          sample_length(options.min_length, options.max_length, LengthLaw::log_uniform, rng);
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      receiver = Point{sender.x + length * std::cos(angle),
                       sender.y + length * std::sin(angle), 0.0};
    }
    points.push_back(sender);
    points.push_back(receiver);
    requests.push_back(Request{2 * i, 2 * i + 1});
  }
  return build_instance(std::move(points), std::move(requests));
}

Instance nested_chain(std::size_t n, double base, double alpha, double max_tau) {
  require(n > 0, "nested_chain: need at least one request");
  require(base > 1.0, "nested_chain: base must exceed 1");
  require(max_tau >= 1.0, "nested_chain: max_tau must be >= 1");
  // Largest loss is (2*base^n)^alpha; assignments may raise it to max_tau.
  const double max_log10 =
      max_tau * alpha * (static_cast<double>(n) + 1.0) * std::log10(base) + 2.0;
  if (max_log10 > 280.0) {
    throw OverflowError("nested_chain: instance would overflow double range; reduce n");
  }
  std::vector<Point> points;
  std::vector<Request> requests;
  points.reserve(2 * n);
  requests.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const double r = std::pow(base, static_cast<double>(i));
    points.push_back(Point{-r, 0.0, 0.0});
    points.push_back(Point{+r, 0.0, 0.0});
    requests.push_back(Request{2 * (i - 1), 2 * (i - 1) + 1});
  }
  return build_instance(std::move(points), std::move(requests));
}

Instance line_instance(std::span<const std::pair<double, double>> endpoints) {
  require(!endpoints.empty(), "line_instance: need at least one request");
  std::vector<Point> points;
  std::vector<Request> requests;
  points.reserve(2 * endpoints.size());
  requests.reserve(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    points.push_back(Point{endpoints[i].first, 0.0, 0.0});
    points.push_back(Point{endpoints[i].second, 0.0, 0.0});
    requests.push_back(Request{2 * i, 2 * i + 1});
  }
  return build_instance(std::move(points), std::move(requests));
}

}  // namespace oisched
