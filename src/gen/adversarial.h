// The Theorem-1 adversarial family (Section 2).
//
// For a given oblivious power function f, builds a family of n directed
// requests on a line that forces Omega(n) colors under f while an optimal
// (non-oblivious) power assignment schedules everything in O(1) colors.
//
// The paper's proof sketch covers asymptotically unbounded f via a
// recursive chain: gaps y_i = mu * (x_{i-1} + y_{i-1}) and lengths x_i <= y_i
// chosen so that f(loss(x_i)) >= y_i^alpha * f(loss(x_j)) / x_j^alpha for
// all j < i — then every later pair drowns the earliest pair of its color
// class. The recursion is solvable whenever f grows at least linearly in
// the loss (uniform-per-loss density g(x) = f(x)/x^alpha non-decreasing:
// pick x_i = y_i). For bounded f (e.g. uniform) the paper notes an adapted
// construction; the standard one is the nested chain, where inner pairs
// drown outer receivers. This generator implements both and picks
// automatically. For *sublinear but unbounded* f (e.g. the square root)
// neither construction applies with double-precision coordinates — the
// paper's own sketch excludes that case, and later literature shows the
// required instances need aspect ratios that are doubly exponential in n;
// `chain_constructible` reports this so benchmarks can label it honestly.
#ifndef OISCHED_GEN_ADVERSARIAL_H
#define OISCHED_GEN_ADVERSARIAL_H

#include <cstddef>
#include <optional>

#include "core/instance.h"
#include "core/power_assignment.h"

namespace oisched {

enum class AdversarialTopology {
  automatic,  // chain when constructible, otherwise nested
  chain,      // the recursive construction of the Theorem-1 proof
  nested,     // u_i = -2^i, v_i = 2^i (the bounded-f adaptation)
};

struct AdversarialOptions {
  AdversarialTopology topology = AdversarialTopology::automatic;
  /// Gap growth factor (the paper's "suitable constant mu"); >= 2.
  double mu = 2.0;
  /// Coordinate budget: construction stops before exceeding this.
  double max_coordinate = 1e280;
};

struct AdversarialFamily {
  Instance instance;
  AdversarialTopology used = AdversarialTopology::chain;
  /// Number of requests actually built (the construction truncates rather
  /// than overflow; check against the requested n).
  std::size_t built = 0;
};

/// Can the Theorem-1 chain recursion be carried out for `f` within the
/// double-precision coordinate budget? True for assignments whose power
/// grows at least linearly in the loss.
[[nodiscard]] bool chain_constructible(const PowerAssignment& f, double alpha,
                                       const AdversarialOptions& options = {});

/// Builds the family. Throws PreconditionError if an explicitly requested
/// chain topology is not constructible for `f`.
[[nodiscard]] AdversarialFamily theorem1_family(std::size_t n, const PowerAssignment& f,
                                                double alpha,
                                                const AdversarialOptions& options = {});

}  // namespace oisched

#endif  // OISCHED_GEN_ADVERSARIAL_H
