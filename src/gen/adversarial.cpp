#include "gen/adversarial.h"

#include <cmath>
#include <utility>
#include <vector>

#include "gen/generators.h"
#include "util/error.h"

namespace oisched {
namespace {

/// Power of f for a pair of *distance* x (f itself consumes the loss x^alpha).
double power_of_distance(const PowerAssignment& f, double x, double alpha) {
  const double loss = path_loss(x, alpha);
  if (!std::isfinite(loss) || loss <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double p = f.power_for_loss(loss);
  return std::isfinite(p) && p > 0.0 ? p : std::numeric_limits<double>::quiet_NaN();
}

/// Attempts the Theorem-1 chain recursion; returns endpoint positions
/// (u_i, v_i) for as many pairs as fit the coordinate budget, or nullopt if
/// even the second pair is not constructible for this f.
std::optional<std::vector<std::pair<double, double>>> build_chain(
    std::size_t n, const PowerAssignment& f, double alpha,
    const AdversarialOptions& options) {
  std::vector<std::pair<double, double>> endpoints;
  double x = 1.0;
  double y = 1.0;
  double u = 0.0;
  double v = 1.0;
  endpoints.emplace_back(u, v);
  const double p1 = power_of_distance(f, x, alpha);
  if (std::isnan(p1)) return std::nullopt;
  // Largest signal density p(x_j) / x_j^alpha seen so far; later pairs must
  // beat it scaled by y_i^alpha so that they drown every earlier pair.
  double max_density = p1 / path_loss(x, alpha);

  for (std::size_t i = 1; i < n; ++i) {
    const double y_next = options.mu * (x + y);
    const double needed = path_loss(y_next, alpha) * max_density;
    if (!std::isfinite(needed)) break;  // coordinate budget exhausted
    // Find x_next <= y_next with p(x_next) >= needed. For any assignment
    // whose power grows at least linearly in the loss, x_next = y_next
    // works; otherwise probe downward (covers non-monotone custom f).
    double x_next = -1.0;
    for (int t = 0; t <= 80; ++t) {
      const double candidate = y_next * std::pow(2.0, -t);
      const double p = power_of_distance(f, candidate, alpha);
      if (!std::isnan(p) && p >= needed * (1.0 - 1e-12)) {
        x_next = candidate;
        break;
      }
    }
    if (x_next < 0.0) {
      // Recursion not solvable for this f.
      return endpoints.size() >= 2
                 ? std::optional(std::move(endpoints))
                 : std::nullopt;
    }
    const double u_next = v + y_next;
    const double v_next = u_next + x_next;
    if (!(v_next < options.max_coordinate)) break;  // truncate before overflow
    endpoints.emplace_back(u_next, v_next);
    u = u_next;
    v = v_next;
    x = x_next;
    y = y_next;
    max_density = std::max(max_density, power_of_distance(f, x, alpha) / path_loss(x, alpha));
  }
  if (endpoints.size() < 2) return std::nullopt;
  return endpoints;
}

/// Largest nested-chain size whose losses (raised up to `max_tau` by the
/// assignment under test) stay within double range.
std::size_t nested_cap(std::size_t n, double alpha, double max_tau) {
  std::size_t cap = n;
  while (cap > 1) {
    const double max_log10 =
        max_tau * alpha * (static_cast<double>(cap) + 1.0) * std::log10(2.0) + 2.0;
    if (max_log10 <= 280.0) break;
    --cap;
  }
  return cap;
}

}  // namespace

bool chain_constructible(const PowerAssignment& f, double alpha,
                         const AdversarialOptions& options) {
  const auto chain = build_chain(6, f, alpha, options);
  return chain.has_value() && chain->size() >= 6;
}

AdversarialFamily theorem1_family(std::size_t n, const PowerAssignment& f, double alpha,
                                  const AdversarialOptions& options) {
  require(n >= 2, "theorem1_family: need at least two requests");
  AdversarialTopology topology = options.topology;
  if (topology == AdversarialTopology::automatic) {
    topology = chain_constructible(f, alpha, options) ? AdversarialTopology::chain
                                                      : AdversarialTopology::nested;
  }
  if (topology == AdversarialTopology::chain) {
    auto endpoints = build_chain(n, f, alpha, options);
    require(endpoints.has_value(),
            "theorem1_family: chain topology not constructible for assignment '" + f.name() +
                "'");
    AdversarialFamily family{line_instance(*endpoints), AdversarialTopology::chain,
                             endpoints->size()};
    return family;
  }
  const std::size_t cap = nested_cap(n, alpha, 2.0);
  AdversarialFamily family{nested_chain(cap, 2.0, alpha), AdversarialTopology::nested, cap};
  return family;
}

}  // namespace oisched
