// Link-churn event traces: the workloads of the online scheduling subsystem.
//
// A ChurnTrace is a time-ordered stream of arrival/departure events over a
// fixed universe of links (the requests of one Instance, indexed 0..n-1).
// The generators cover the three regimes the dynamic benchmarks exercise:
// Poisson arrivals with exponential holding times (steady churn), flash
// crowds (correlated bursts), and adversarial insert-then-delete chains
// (maximum recoloring pressure on a first-fit maintainer). All generators
// are deterministic given an Rng, independent of thread count or call
// site, and traces serialize to JSON (schema "oisched-trace/1") for
// scripted replay via `schedule_tool replay --trace`.
#ifndef OISCHED_GEN_CHURN_H
#define OISCHED_GEN_CHURN_H

#include <cstddef>
#include <string>
#include <vector>

#include "util/json_writer.h"
#include "util/rng.h"

namespace oisched {

struct ChurnEvent {
  enum class Kind { arrival, departure };

  Kind kind = Kind::arrival;
  std::size_t link = 0;  // request index into the instance the trace targets
  double time = 0.0;

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// A validated event stream: times are non-decreasing and every link
/// alternates arrival/departure starting from inactive.
struct ChurnTrace {
  std::size_t universe = 0;  // links are indices in [0, universe)
  std::vector<ChurnEvent> events;

  friend bool operator==(const ChurnTrace&, const ChurnTrace&) = default;

  /// Throws PreconditionError when the stream is inconsistent (link out of
  /// range, time running backwards, double arrival, departure of an
  /// inactive link).
  void validate() const;

  /// Links still active after the last event, in increasing index order.
  [[nodiscard]] std::vector<std::size_t> final_active() const;

  /// Largest number of simultaneously active links over the stream.
  [[nodiscard]] std::size_t peak_active() const;
};

struct PoissonChurnOptions {
  double arrival_rate = 4.0;       // expected arrivals per unit time
  double mean_holding_time = 8.0;  // expected lifetime of an arrived link
  std::size_t max_events = 1024;   // trace length (arrivals + departures)
};

/// Steady-state churn: arrivals form a Poisson process over the inactive
/// links, each arrival holds for an exponential duration. When every link
/// is active, the stream idles until the next departure.
[[nodiscard]] ChurnTrace poisson_trace(std::size_t universe,
                                       const PoissonChurnOptions& options, Rng& rng);

struct FlashCrowdOptions {
  std::size_t bursts = 8;          // number of crowd spikes
  std::size_t burst_size = 0;      // links per spike (0 = universe / 4)
  double burst_spacing = 32.0;     // time between spike fronts
  double burst_width = 1.0;        // arrivals spread uniformly over this window
  double mean_holding_time = 8.0;  // exponential lifetime after arrival
};

/// Correlated load spikes: every `burst_spacing` time units a crowd of
/// links arrives nearly at once and drains away exponentially.
[[nodiscard]] ChurnTrace flash_crowd_trace(std::size_t universe,
                                           const FlashCrowdOptions& options, Rng& rng);

struct AdversarialChurnOptions {
  std::size_t rounds = 0;        // insert-then-delete rounds (0 = universe / 2)
  std::size_t chain_length = 8;  // links inserted per round
};

/// Insert-then-delete chains: each round inserts `chain_length` links and
/// immediately deletes all but the last, which stays forever. The residue
/// accumulates, so every later round first-fits against an ever more
/// fragmented coloring — the worst case for incremental maintenance.
[[nodiscard]] ChurnTrace adversarial_chain_trace(std::size_t universe,
                                                 const AdversarialChurnOptions& options,
                                                 Rng& rng);

/// Dispatches over the generator kinds by name ("poisson" | "flash" |
/// "adversarial") — the single registry the CLI, the benchmark harness and
/// the tests share. target_events sizes the stream (0 picks a default
/// proportional to the universe for poisson, the generator defaults
/// otherwise); the Poisson arrival rate scales with the universe so steady
/// state keeps ~half the links active. Throws PreconditionError on an
/// unknown kind.
[[nodiscard]] ChurnTrace make_churn_trace(const std::string& kind, std::size_t universe,
                                          std::size_t target_events, Rng& rng);

/// JSON document for a trace (schema "oisched-trace/1"):
///   {"schema": "oisched-trace/1", "universe": 256,
///    "events": [{"t": 0.25, "kind": "arrival", "link": 3}, ...]}
[[nodiscard]] JsonValue trace_to_json(const ChurnTrace& trace);

/// Parses a trace document; throws PreconditionError on schema mismatch or
/// an invalid stream (the result is validate()d).
[[nodiscard]] ChurnTrace trace_from_json(const JsonValue& document);

/// File convenience wrappers around the JSON form.
void save_trace(const std::string& path, const ChurnTrace& trace);
[[nodiscard]] ChurnTrace load_trace(const std::string& path);

}  // namespace oisched

#endif  // OISCHED_GEN_CHURN_H
