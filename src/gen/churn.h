// Link-churn event traces: the workloads of the online scheduling subsystem.
//
// A ChurnTrace is a time-ordered stream of events over a universe of links
// (the requests of one Instance, indexed 0..n-1). Besides arrival and
// departure of known links, a trace may GROW the universe: a link_arrival
// event introduces a brand-new link (its endpoints are metric node ids)
// that immediately becomes active and takes the next free index — the
// regime the paper's oblivious power assignments make sound, since a fresh
// link's power depends only on its own length. A trace may also MOVE a
// link: a link_update event re-points an active link's endpoints at other
// metric nodes (endpoint motion), which the replay side turns into an
// in-place gain row/column refresh. The generators cover the regimes the
// dynamic benchmarks exercise: Poisson arrivals with exponential holding
// times (steady churn), flash crowds (correlated bursts), adversarial
// insert-then-delete chains (maximum recoloring pressure on a first-fit
// maintainer), hotspot churn confined to a small window of a huge universe
// (the tiled-backend workload), growing traces that interleave churn with
// fresh-link introductions (the appendable-backend workload), and three
// mobility regimes — random-waypoint wandering, commuter oscillation
// between home and work anchors, and flash-mob drift toward a shared
// hotspot — that interleave churn with endpoint motion. All generators are
// deterministic given an Rng, independent of thread count or call site,
// and traces serialize to JSON (schema "oisched-trace/3"; "/1" and "/2"
// documents remain readable) for scripted replay via
// `schedule_tool replay --trace`.
#ifndef OISCHED_GEN_CHURN_H
#define OISCHED_GEN_CHURN_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sinr/model.h"
#include "util/expected.h"
#include "util/json_writer.h"
#include "util/rng.h"

namespace oisched {

class MetricSpace;

struct ChurnEvent {
  enum class Kind { arrival, departure, link_arrival, link_update };

  Kind kind = Kind::arrival;
  std::size_t link = 0;  // request index into the instance the trace targets
  double time = 0.0;
  /// link_arrival and link_update only: the link's endpoints (metric node
  /// ids). For a link_arrival, `link` is the index the new link receives
  /// and must equal the universe size at that point in the stream; for a
  /// link_update, `link` must be active and `request` holds its NEW
  /// endpoints (the replay side refreshes its gain row/column in place).
  Request request{};

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// A validated event stream: times are non-decreasing, every known link
/// alternates arrival/departure starting from inactive, fresh links extend
/// the universe one index at a time (arriving active), and updates only
/// ever target currently active links.
struct ChurnTrace {
  std::size_t universe = 0;  // INITIAL universe; link_arrival events grow it
  std::vector<ChurnEvent> events;

  friend bool operator==(const ChurnTrace&, const ChurnTrace&) = default;

  /// Throws PreconditionError when the stream is inconsistent (link out of
  /// range, time running backwards, double arrival, departure of an
  /// inactive link, fresh link not taking the next index).
  void validate() const;

  /// Universe size after the last event (initial + fresh links).
  [[nodiscard]] std::size_t final_universe() const;

  /// True when the trace contains link_arrival (universe-growing) events.
  [[nodiscard]] bool has_fresh_links() const;

  /// True when the trace contains link_update (endpoint-motion) events.
  [[nodiscard]] bool has_link_updates() const;

  /// Links still active after the last event, in increasing index order.
  [[nodiscard]] std::vector<std::size_t> final_active() const;

  /// Largest number of simultaneously active links over the stream.
  [[nodiscard]] std::size_t peak_active() const;
};

struct PoissonChurnOptions {
  double arrival_rate = 4.0;       // expected arrivals per unit time
  double mean_holding_time = 8.0;  // expected lifetime of an arrived link
  std::size_t max_events = 1024;   // trace length (arrivals + departures)
};

/// Steady-state churn: arrivals form a Poisson process over the inactive
/// links, each arrival holds for an exponential duration. When every link
/// is active, the stream idles until the next departure.
[[nodiscard]] ChurnTrace poisson_trace(std::size_t universe,
                                       const PoissonChurnOptions& options, Rng& rng);

struct FlashCrowdOptions {
  std::size_t bursts = 8;          // number of crowd spikes
  std::size_t burst_size = 0;      // links per spike (0 = universe / 4)
  double burst_spacing = 32.0;     // time between spike fronts
  double burst_width = 1.0;        // arrivals spread uniformly over this window
  double mean_holding_time = 8.0;  // exponential lifetime after arrival
};

/// Correlated load spikes: every `burst_spacing` time units a crowd of
/// links arrives nearly at once and drains away exponentially.
[[nodiscard]] ChurnTrace flash_crowd_trace(std::size_t universe,
                                           const FlashCrowdOptions& options, Rng& rng);

struct AdversarialChurnOptions {
  std::size_t rounds = 0;        // insert-then-delete rounds (0 = universe / 2)
  std::size_t chain_length = 8;  // links inserted per round
};

/// Insert-then-delete chains: each round inserts `chain_length` links and
/// immediately deletes all but the last, which stays forever. The residue
/// accumulates, so every later round first-fits against an ever more
/// fragmented coloring — the worst case for incremental maintenance.
[[nodiscard]] ChurnTrace adversarial_chain_trace(std::size_t universe,
                                                 const AdversarialChurnOptions& options,
                                                 Rng& rng);

struct HotspotChurnOptions {
  std::size_t window = 0;          // links drawn from [0, window); 0 = min(n, 128)
  double arrival_rate = 0.0;       // 0 = window / (2 * mean_holding_time)
  double mean_holding_time = 8.0;  // exponential lifetime of an arrived link
  std::size_t max_events = 0;      // 0 = 8 * window
};

/// Poisson churn confined to a small window of a huge universe — the
/// workload of the tiled gain backend, whose resident memory follows the
/// touched rows rather than the universe size (the large-scale
/// locally-active regime of distributed SIR-aware scheduling).
[[nodiscard]] ChurnTrace hotspot_trace(std::size_t universe,
                                       const HotspotChurnOptions& options, Rng& rng);

struct GrowingChurnOptions {
  double arrival_rate = 0.0;       // 0 = final universe / (2 * mean_holding_time)
  double mean_holding_time = 8.0;  // exponential lifetime of an arrived link
  /// Total event budget (0 = 16 * final universe). Must exceed the
  /// fresh-link pool — every fresh link is introduced, always.
  std::size_t max_events = 0;
};

/// Poisson churn over a universe that grows: the fresh links are introduced
/// (active, taking indices initial_universe, initial_universe + 1, ...)
/// evenly across the event budget, join the churn pool, and depart like any
/// other link — the appendable-backend workload. Throws PreconditionError
/// when max_events is too small to introduce the whole pool.
[[nodiscard]] ChurnTrace growing_trace(std::size_t initial_universe,
                                       std::span<const Request> fresh_links,
                                       const GrowingChurnOptions& options, Rng& rng);

struct WaypointMobilityOptions {
  double arrival_rate = 0.0;       // 0 = universe / (2 * mean_holding_time)
  double mean_holding_time = 8.0;  // exponential lifetime of an arrived link
  double move_rate = 0.0;          // motion events per unit time; 0 = universe / 2
  double step_fraction = 0.35;     // fraction of the remaining distance per step
  std::size_t max_events = 0;      // trace length (0 = 16 * universe)
};

/// Random-waypoint mobility over Poisson churn: links arrive and depart as
/// in poisson_trace, and a third Poisson stream of motion events picks a
/// random active link and steps both its endpoints toward a per-link
/// waypoint pair (redrawn once reached), emitting a link_update with the
/// new endpoints. Motion is metric-only geodesic interpolation — the
/// stepped endpoint is the node whose distances best split the from/target
/// geodesic — and moved endpoints always stay at distinct positions, the
/// invariant the gain tables require.
[[nodiscard]] ChurnTrace waypoint_trace(const MetricSpace& metric,
                                        std::span<const Request> requests,
                                        const WaypointMobilityOptions& options, Rng& rng);

struct CommuterMobilityOptions {
  std::size_t rounds = 12;      // motion rounds after the initial arrivals
  double step_fraction = 0.5;   // fraction of the remaining distance per step
  std::size_t max_events = 0;   // trace length (0 = universe * (1 + rounds))
};

/// Commuter flows: every link arrives near t = 0, then oscillates between
/// its home endpoints (the initial positions) and a per-link work anchor —
/// a pure-motion regime (no departures) where each round updates the links
/// in a freshly shuffled order. Links that reach one anchor turn around
/// and head for the other.
[[nodiscard]] ChurnTrace commuter_trace(const MetricSpace& metric,
                                        std::span<const Request> requests,
                                        const CommuterMobilityOptions& options, Rng& rng);

struct FlashMobOptions {
  std::size_t mobs = 3;            // drift-in / drift-out cycles
  std::size_t crowd = 0;           // links drifting per mob (0 = universe / 4)
  std::size_t drift_steps = 3;     // motion rounds toward the hotspot and back
  std::size_t churn_links = 0;     // departures+re-arrivals between mobs (0 = universe / 8)
  double step_fraction = 0.5;      // fraction of the remaining distance per step
  std::size_t max_events = 0;      // trace length cap (0 = 16 * universe)
};

/// Flash-mob drift: after all links arrive, each mob picks a hotspot node
/// and a random crowd of links that drift toward it over a few rounds,
/// linger, and drift back home, with a sprinkle of departures and
/// re-arrivals between mobs — correlated motion that concentrates
/// interference the way flash crowds concentrate load.
[[nodiscard]] ChurnTrace flash_mob_trace(const MetricSpace& metric,
                                         std::span<const Request> requests,
                                         const FlashMobOptions& options, Rng& rng);

/// Dispatches over the generator kinds by name ("poisson" | "flash" |
/// "adversarial" | "hotspot" | "growing" | "waypoint" | "commuter" |
/// "flashmob") — the single registry the CLI, the benchmark harness and
/// the tests share. target_events sizes the stream (0 picks a default
/// proportional to the universe — or the window for hotspot; the generator
/// defaults otherwise); the Poisson arrival rate scales with the universe
/// so steady state keeps ~half the links active. "growing" requires a
/// non-empty fresh_links pool (the requests the universe will grow by).
/// The mobility kinds (waypoint/commuter/flashmob) require the metric and
/// the universe's initial requests — endpoint motion needs the geometry;
/// the other kinds ignore both. Throws PreconditionError on an unknown
/// kind or missing mobility inputs.
[[nodiscard]] ChurnTrace make_churn_trace(const std::string& kind, std::size_t universe,
                                          std::size_t target_events, Rng& rng,
                                          std::span<const Request> fresh_links = {},
                                          const MetricSpace* metric = nullptr,
                                          std::span<const Request> initial_requests = {});

/// JSON document for a trace (schema "oisched-trace/3"):
///   {"schema": "oisched-trace/3", "universe": 256,
///    "events": [{"t": 0.25, "kind": "arrival", "link": 3},
///               {"t": 2.5, "kind": "link_arrival", "link": 256,
///                "u": 12, "v": 13},
///               {"t": 3.5, "kind": "link_update", "link": 3,
///                "u": 40, "v": 41}, ...]}
[[nodiscard]] JsonValue trace_to_json(const ChurnTrace& trace);

/// Parses a trace document — schema "oisched-trace/3", the churn-only
/// "oisched-trace/2", or the legacy fixed-universe "oisched-trace/1";
/// throws PreconditionError on schema mismatch, a malformed record
/// (missing or negative endpoints, unknown kind, an event kind newer than
/// the document's schema) or an invalid stream (the result is
/// validate()d).
[[nodiscard]] ChurnTrace trace_from_json(const JsonValue& document);

/// File convenience wrappers around the JSON form.
void save_trace(const std::string& path, const ChurnTrace& trace);
[[nodiscard]] ChurnTrace load_trace(const std::string& path);

/// Non-throwing load for the boundary layers (CLI, service): a missing
/// file, malformed JSON or invalid stream comes back as a structured
/// message instead of an exception.
[[nodiscard]] Expected<ChurnTrace> try_load_trace(const std::string& path);

}  // namespace oisched

#endif  // OISCHED_GEN_CHURN_H
