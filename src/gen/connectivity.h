// Strong-connectivity request sets (the Moscibroda–Wattenhofer workload).
//
// The paper's related work (Section 1.3) centers on the question that
// started the area: how many colors does it take to schedule a request set
// that makes n arbitrarily placed nodes strongly connected? The canonical
// such set is a minimum spanning tree: its edges, as full-duplex requests,
// connect everything.
//
// These instances differ structurally from the pair workloads: requests
// SHARE endpoints (adjacent tree edges touch), so two adjacent requests can
// never share a color in the physical model — scheduling is edge coloring
// entangled with SINR. The exponential line configuration reproduces the
// Omega(n) examples of [12] for uniform/linear power assignments.
#ifndef OISCHED_GEN_CONNECTIVITY_H
#define OISCHED_GEN_CONNECTIVITY_H

#include <cstddef>

#include "core/instance.h"
#include "metric/euclidean.h"
#include "util/rng.h"

namespace oisched {

/// Euclidean minimum spanning tree (Prim, O(n^2)) over explicit points;
/// returns the edge list as requests over those points.
[[nodiscard]] std::vector<Request> euclidean_mst(const std::vector<Point>& points);

/// Connectivity instance: `num_nodes` random points in a square, requests =
/// MST edges (num_nodes - 1 of them, sharing endpoints).
[[nodiscard]] Instance mst_connectivity_instance(std::size_t num_nodes, double side,
                                                 Rng& rng);

/// The adversarial connectivity configuration of [12]: nodes on a line at
/// exponentially growing coordinates x_i = 2^i; the MST is the chain. Under
/// uniform or linear powers this needs Omega(n) colors; with a good
/// assignment polylog suffices.
[[nodiscard]] Instance exponential_line_connectivity(std::size_t num_nodes);

}  // namespace oisched

#endif  // OISCHED_GEN_CONNECTIVITY_H
