#include "gen/connectivity.h"

#include <cmath>
#include <limits>
#include <memory>

#include "util/error.h"

namespace oisched {

std::vector<Request> euclidean_mst(const std::vector<Point>& points) {
  const std::size_t n = points.size();
  require(n >= 2, "euclidean_mst: need at least two points");
  std::vector<Request> edges;
  edges.reserve(n - 1);
  // Prim's algorithm with O(n^2) scans — fine at the sizes we generate.
  std::vector<char> in_tree(n, 0);
  std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> best_from(n, 0);
  in_tree[0] = 1;
  for (NodeId v = 1; v < n; ++v) {
    best_dist[v] = euclidean_distance(points[0], points[v]);
    best_from[v] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    NodeId pick = 0;
    double pick_dist = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && best_dist[v] < pick_dist) {
        pick = v;
        pick_dist = best_dist[v];
      }
    }
    require(std::isfinite(pick_dist) && pick_dist > 0.0,
            "euclidean_mst: points must be distinct");
    in_tree[pick] = 1;
    edges.push_back(Request{best_from[pick], pick});
    for (NodeId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = euclidean_distance(points[pick], points[v]);
      if (d < best_dist[v]) {
        best_dist[v] = d;
        best_from[v] = pick;
      }
    }
  }
  return edges;
}

Instance mst_connectivity_instance(std::size_t num_nodes, double side, Rng& rng) {
  require(num_nodes >= 2, "mst_connectivity_instance: need at least two nodes");
  std::vector<Point> points;
  points.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    points.push_back(Point{rng.uniform(0.0, side), rng.uniform(0.0, side), 0.0});
  }
  std::vector<Request> edges = euclidean_mst(points);
  return Instance(std::make_shared<EuclideanMetric>(std::move(points)), std::move(edges));
}

Instance exponential_line_connectivity(std::size_t num_nodes) {
  require(num_nodes >= 2, "exponential_line_connectivity: need at least two nodes");
  // Coordinates 2^i; guard the loss range like the nested chain does.
  const double max_log10 =
      3.0 * (static_cast<double>(num_nodes) + 1.0) * std::log10(2.0) + 2.0;
  if (max_log10 > 280.0) {
    throw OverflowError("exponential_line_connectivity: too many nodes for double range");
  }
  std::vector<Point> points;
  std::vector<Request> edges;
  points.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    points.push_back(Point{std::pow(2.0, static_cast<double>(i)), 0.0, 0.0});
    if (i > 0) edges.push_back(Request{i - 1, i});
  }
  return Instance(std::make_shared<EuclideanMetric>(std::move(points)), std::move(edges));
}

}  // namespace oisched
